package scenario_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/scenario"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGridExpandCrossProduct: expansion yields the full cross-product
// in row-major order with canonical labels.
func TestGridExpandCrossProduct(t *testing.T) {
	g := scenario.Grid{
		Base: scenario.Spec{Name: "sweep", Size: 64, Cycles: 2, Seed: 3},
		Axes: []scenario.Axis{
			{Param: "selector", Strings: []string{"seq", "rand"}},
			{Param: "size", Ints: []int{64, 128, 256}},
		},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("expanded to %d specs, want 6", len(specs))
	}
	wantLabels := []string{
		"selector=seq,size=64", "selector=seq,size=128", "selector=seq,size=256",
		"selector=rand,size=64", "selector=rand,size=128", "selector=rand,size=256",
	}
	for i, s := range specs {
		if s.Label != wantLabels[i] {
			t.Errorf("cell %d label = %q, want %q", i, s.Label, wantLabels[i])
		}
		if s.Name != "sweep" {
			t.Errorf("cell %d lost the base name: %q", i, s.Name)
		}
	}
	if specs[1].Size != 128 || specs[3].Selector != scenario.SelectorRand {
		t.Errorf("axis values not applied: %+v", specs)
	}
}

// TestGridSeedDerivation: cell seeds are deterministic across
// expansions, distinct across cells, and tied to the base seed.
func TestGridSeedDerivation(t *testing.T) {
	g := scenario.Grid{
		Base: scenario.Spec{Size: 64, Cycles: 1, Seed: 9},
		Axes: []scenario.Axis{{Param: "loss_prob", Floats: []float64{0, 0.1, 0.2}}},
	}
	a, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := range a {
		if a[i].Seed != b[i].Seed {
			t.Fatalf("cell %d seed not deterministic: %d vs %d", i, a[i].Seed, b[i].Seed)
		}
		if seen[a[i].Seed] {
			t.Fatalf("cell %d reuses seed %d", i, a[i].Seed)
		}
		seen[a[i].Seed] = true
	}
	g.Base.Seed = 10
	c, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if c[0].Seed == a[0].Seed {
		t.Fatal("cell seed ignores the base seed")
	}
	// A grid with no axes must leave the base seed untouched.
	plain, err := scenario.Grid{Base: scenario.Spec{Size: 64, Cycles: 1, Seed: 9}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 || plain[0].Seed != 9 || plain[0].Label != "" {
		t.Fatalf("axis-free grid mangled the base spec: %+v", plain[0])
	}
}

// TestGridExpandRejectsInvalid: bad axes and specs that validate badly
// fail at expansion, not at run time.
func TestGridExpandRejectsInvalid(t *testing.T) {
	cases := []scenario.Grid{
		{Base: scenario.Spec{Size: 64}, Axes: []scenario.Axis{{Param: "bogus", Ints: []int{1}}}},
		{Base: scenario.Spec{Size: 64}, Axes: []scenario.Axis{{Param: "size", Floats: []float64{1}}}},
		{Base: scenario.Spec{Size: 64}, Axes: []scenario.Axis{{Param: "size"}}},
		{Base: scenario.Spec{Size: 64}, Axes: []scenario.Axis{{Param: "selector", Strings: []string{"nope"}}}},
		{Base: scenario.Spec{Size: 1}},
	}
	for i, g := range cases {
		if _, err := g.Expand(); err == nil {
			t.Errorf("case %d: invalid grid accepted", i)
		}
	}
}

// TestSpecJSONRoundTrip: a fully populated spec survives JSON
// marshal → ParseFile unchanged.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := scenario.Spec{
		Name:          "round-trip",
		Size:          512,
		Cycles:        7,
		Ops:           []string{"avg", "min", "max"},
		Selector:      scenario.SelectorRand,
		Topology:      scenario.TopologyKRegular,
		ViewSize:      10,
		Loss:          scenario.LossSymmetric,
		LossProb:      0.25,
		Churn:         &scenario.ChurnSpec{Model: "oscillating", Min: 400, Max: 600, Period: 50, Fluctuation: 5},
		Shards:        0,
		Repeats:       3,
		Seed:          123456789,
		TargetRatio:   1e-6,
		Quantiles:     true,
		CrashFraction: 0,
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scenario.ParseFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Base, spec) {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", got.Base, spec)
	}
	if len(got.Axes) != 0 {
		t.Fatalf("bare spec grew axes: %+v", got.Axes)
	}
}

// TestParseFileGridAndStrictness: grid detection via the "base" key,
// and unknown fields rejected in both forms.
func TestParseFileGridAndStrictness(t *testing.T) {
	grid, err := scenario.ParseFile([]byte(`{"base": {"size": 64}, "axes": [{"param": "size", "ints": [64, 128]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if grid.Base.Size != 64 || len(grid.Axes) != 1 {
		t.Fatalf("grid parsed wrong: %+v", grid)
	}
	if _, err := scenario.ParseFile([]byte(`{"size": 64, "cycels": 3}`)); err == nil {
		t.Fatal("typo field accepted in spec")
	}
	if _, err := scenario.ParseFile([]byte(`{"base": {"size": 64, "shardz": 2}}`)); err == nil {
		t.Fatal("typo field accepted in grid base")
	}
	if _, err := scenario.ParseFile([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestRunnerDeterministicAcrossWorkers: the reorder buffer and the
// per-worker kernel reuse must make results — values and emission
// order — independent of pool size and scheduling.
func TestRunnerDeterministicAcrossWorkers(t *testing.T) {
	specs := []scenario.Spec{
		{Name: "a", Size: 200, Cycles: 3, Repeats: 3, Seed: 1},
		{Name: "b", Size: 100, Cycles: 2, Repeats: 2, Seed: 2, LossProb: 0.2},
		{Name: "c", Size: 150, Cycles: 2, Repeats: 2, Seed: 3, Selector: scenario.SelectorRand},
	}
	run := func(workers int) []scenario.Result {
		var col scenario.Collector
		if err := (scenario.Runner{Workers: workers}).Run(context.Background(), specs, &col); err != nil {
			t.Fatal(err)
		}
		return col.Results()
	}
	want := run(1)
	for _, workers := range []int{2, 4, 7} {
		got := run(workers)
		if !reflect.DeepEqual(stripNaN(got), stripNaN(want)) {
			t.Fatalf("workers=%d: results differ from single-worker run", workers)
		}
	}
}

// stripNaN replaces NaNs with a sentinel so DeepEqual can compare rows.
func stripNaN(rows []scenario.Result) []scenario.Result {
	out := make([]scenario.Result, len(rows))
	for i, r := range rows {
		for _, f := range []*float64{&r.Mean, &r.Variance, &r.Reduction, &r.Min, &r.Max, &r.P10, &r.P50, &r.P90, &r.Corruption, &r.Rejected} {
			if math.IsNaN(*f) {
				*f = -424242
			}
		}
		out[i] = r
	}
	return out
}

// TestRunnerReuseRespectsShardClamp: a worker warmed by a small spec
// (whose shard request was clamped by sim.New) must not hand its
// clamped kernel to a larger spec — the rows must match a cold run
// exactly, whatever was executed before on the same worker.
func TestRunnerReuseRespectsShardClamp(t *testing.T) {
	big := scenario.Spec{Name: "big", Size: 1000, Cycles: 3, Shards: 4, Seed: 21}
	var cold scenario.Collector
	if err := (scenario.Runner{Workers: 1}).Run(context.Background(), []scenario.Spec{big}, &cold); err != nil {
		t.Fatal(err)
	}
	var warm scenario.Collector
	err := (scenario.Runner{Workers: 1}).Run(context.Background(), []scenario.Spec{
		{Name: "small", Size: 6, Cycles: 1, Shards: 4, Seed: 20}, // clamped to 3 shards
		big,
	}, &warm)
	if err != nil {
		t.Fatal(err)
	}
	warmBig := warm.Results()[len(warm.Results())-4:]
	for i, r := range cold.Results() {
		w := warmBig[i]
		if r.Variance != w.Variance || r.Mean != w.Mean {
			t.Fatalf("cycle %d: warm-worker run diverged from cold run (%g vs %g)", r.Cycle, w.Variance, r.Variance)
		}
	}
}

// TestRunnerRowShape: cycle numbering, initial row, reduction NaN at
// cycle 0, quantiles present when requested.
func TestRunnerRowShape(t *testing.T) {
	var col scenario.Collector
	err := scenario.Run(context.Background(), []scenario.Spec{{Size: 300, Cycles: 4, Quantiles: true, Seed: 5}}, &col)
	if err != nil {
		t.Fatal(err)
	}
	rows := col.Results()
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5 (cycle 0..4)", len(rows))
	}
	for i, r := range rows {
		if r.Cycle != i {
			t.Errorf("row %d cycle = %d", i, r.Cycle)
		}
		if r.Size != 300 {
			t.Errorf("row %d size = %d", i, r.Size)
		}
		if math.IsNaN(r.P50) {
			t.Errorf("row %d missing quantiles", i)
		}
		if i == 0 && !math.IsNaN(r.Reduction) {
			t.Error("cycle 0 has a reduction")
		}
		if i > 0 && (r.Reduction <= 0 || r.Reduction >= 1) {
			t.Errorf("cycle %d reduction %g outside (0,1)", i, r.Reduction)
		}
		if i > 0 && r.Variance >= rows[i-1].Variance {
			t.Errorf("variance not decreasing at cycle %d", i)
		}
		if r.P10 > r.P50 || r.P50 > r.P90 {
			t.Errorf("row %d quantiles out of order: %g %g %g", i, r.P10, r.P50, r.P90)
		}
	}
}

// TestRunnerTargetRatioStopsEarly: the early-stop target truncates the
// row stream once the variance ratio is reached.
func TestRunnerTargetRatioStopsEarly(t *testing.T) {
	var col scenario.Collector
	err := scenario.Run(context.Background(), []scenario.Spec{{Size: 500, Cycles: 100, TargetRatio: 1e-3, Seed: 6}}, &col)
	if err != nil {
		t.Fatal(err)
	}
	rows := col.Results()
	last := rows[len(rows)-1]
	if last.Cycle >= 100 {
		t.Fatalf("no early stop: ran all %d cycles", last.Cycle)
	}
	if last.Variance > 1e-3*rows[0].Variance {
		t.Fatalf("stopped before reaching target: %g vs %g", last.Variance, rows[0].Variance)
	}
	if prev := rows[len(rows)-2]; prev.Variance <= 1e-3*rows[0].Variance {
		t.Fatal("stopped one cycle late")
	}
}

// TestRunnerChurnTracksModel: a churned scenario keeps the population
// on the oscillating model's target and reports per-cycle sizes.
func TestRunnerChurnTracksModel(t *testing.T) {
	var col scenario.Collector
	err := scenario.Run(context.Background(), []scenario.Spec{{
		Size:   500,
		Cycles: 40,
		Churn:  &scenario.ChurnSpec{Model: "oscillating", Min: 400, Max: 600, Period: 40, Fluctuation: 5},
		Seed:   7,
	}}, &col)
	if err != nil {
		t.Fatal(err)
	}
	rows := col.Results()
	if rows[0].Size != 500 {
		t.Fatalf("initial size %d", rows[0].Size)
	}
	moved := false
	for _, r := range rows {
		if r.Size < 395 || r.Size > 605 {
			t.Fatalf("cycle %d: size %d escaped the band", r.Cycle, r.Size)
		}
		if r.Size != 500 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("churn never changed the population")
	}
}

// TestRunnerCrashEmitsPreCrashRow: crash specs carry the cycle -1
// snapshot, and survivors converge to the surviving mean.
func TestRunnerCrashEmitsPreCrashRow(t *testing.T) {
	var col scenario.Collector
	err := scenario.Run(context.Background(), []scenario.Spec{{Size: 1000, Cycles: 10, CrashFraction: 0.3, Seed: 8}}, &col)
	if err != nil {
		t.Fatal(err)
	}
	rows := col.Results()
	if rows[0].Cycle != -1 || rows[0].Size != 1000 {
		t.Fatalf("pre-crash row wrong: %+v", rows[0])
	}
	if rows[1].Cycle != 0 || rows[1].Size != 700 {
		t.Fatalf("post-crash row wrong: %+v", rows[1])
	}
	last := rows[len(rows)-1]
	if last.Variance > 1e-4*rows[1].Variance {
		t.Fatal("survivors failed to converge")
	}
}

// TestRunnerWaitMode: event-driven execution emits one row per Δt and
// converges.
func TestRunnerWaitMode(t *testing.T) {
	for _, wait := range []scenario.Wait{scenario.WaitConstant, scenario.WaitExponential} {
		var col scenario.Collector
		err := scenario.Run(context.Background(), []scenario.Spec{{Size: 1000, Cycles: 8, Wait: wait, Seed: 9}}, &col)
		if err != nil {
			t.Fatal(err)
		}
		rows := col.Results()
		if len(rows) != 9 {
			t.Fatalf("%s: got %d rows, want 9", wait, len(rows))
		}
		if last := rows[len(rows)-1]; last.Variance >= rows[0].Variance*0.01 {
			t.Fatalf("%s: no convergence: %g → %g", wait, rows[0].Variance, last.Variance)
		}
	}
}

// TestRunnerShardedMatchesSequentialStatistically: a sharded spec
// reaches the same convergence rate as the sequential one.
func TestRunnerShardedMatchesSequentialStatistically(t *testing.T) {
	rate := func(shards int) float64 {
		var col scenario.Collector
		err := scenario.Run(context.Background(), []scenario.Spec{{Size: 10000, Cycles: 8, Shards: shards, Repeats: 3, Seed: 10}}, &col)
		if err != nil {
			t.Fatal(err)
		}
		acc, n := 0.0, 0
		var first float64
		for _, r := range col.Results() {
			switch r.Cycle {
			case 0:
				first = r.Variance
			case 8:
				acc += math.Pow(r.Variance/first, 1.0/8)
				n++
			}
		}
		return acc / float64(n)
	}
	seq, sharded := rate(0), rate(4)
	if math.Abs(seq-sharded) > 0.02 {
		t.Fatalf("sharded rate %.4f strayed from sequential %.4f", sharded, seq)
	}
}

// TestRunnerShardedPMBitIdentical: the pm selector's sharded runs are
// bit-identical to sequential ones at the scenario level too.
func TestRunnerShardedPMBitIdentical(t *testing.T) {
	run := func(shards int) []scenario.Result {
		var col scenario.Collector
		err := scenario.Run(context.Background(), []scenario.Spec{{Size: 2000, Cycles: 6, Selector: scenario.SelectorPM, Shards: shards, Seed: 11}}, &col)
		if err != nil {
			t.Fatal(err)
		}
		return col.Results()
	}
	seq, sharded := run(0), run(4)
	for i := range seq {
		if seq[i].Variance != sharded[i].Variance || seq[i].Mean != sharded[i].Mean {
			t.Fatalf("cycle %d: sharded pm diverged from sequential", i)
		}
	}
}

// TestRunnerErrorPropagates: a run-time failure (pm pairing on an odd
// population) surfaces with the spec's identity attached.
func TestRunnerErrorPropagates(t *testing.T) {
	err := scenario.Run(context.Background(), []scenario.Spec{
		{Name: "ok", Size: 100, Cycles: 1, Seed: 1},
		{Name: "bad", Size: 101, Cycles: 1, Selector: scenario.SelectorPM, Seed: 2},
	}, &scenario.Collector{})
	if err == nil {
		t.Fatal("odd-size pm spec did not fail")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error does not identify the failing spec: %v", err)
	}
}

// TestRunnerSizeEstimation: the §4 mode emits one row per epoch with
// estimates tracking the actual size.
func TestRunnerSizeEstimation(t *testing.T) {
	var col scenario.Collector
	err := scenario.Run(context.Background(), []scenario.Spec{{
		Size:           1000,
		Cycles:         150,
		Churn:          &scenario.ChurnSpec{Model: "oscillating", Min: 900, Max: 1100, Period: 100, Fluctuation: 10},
		SizeEstimation: &scenario.SizeEstimationSpec{EpochCycles: 30},
		Seed:           3,
	}}, &col)
	if err != nil {
		t.Fatal(err)
	}
	rows := col.Results()
	if len(rows) != 5 {
		t.Fatalf("got %d epochs, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Cycle%30 != 0 {
			t.Errorf("epoch-end cycle %d not on epoch boundary", r.Cycle)
		}
		relErr := math.Abs(r.Mean-float64(r.Size)) / float64(r.Size)
		if relErr > 0.25 {
			t.Errorf("cycle %d: estimate %.0f vs size %d (%.0f%% off)", r.Cycle, r.Mean, r.Size, 100*relErr)
		}
	}
}

// TestGoldenWriters pins the CSV and JSONL wire formats with golden
// files: a small deterministic grid must serialize byte-identically
// on every platform.
func TestGoldenWriters(t *testing.T) {
	grid := scenario.Grid{
		Base: scenario.Spec{Name: "golden", Size: 64, Cycles: 2, Repeats: 2, Seed: 42, Quantiles: true},
		Axes: []scenario.Axis{
			{Param: "loss_prob", Floats: []float64{0, 0.2}},
		},
	}
	for _, tc := range []struct {
		name   string
		golden string
		writer func(*bytes.Buffer) scenario.Writer
	}{
		{"csv", "golden.csv", func(b *bytes.Buffer) scenario.Writer { return scenario.NewCSVWriter(b) }},
		{"jsonl", "golden.jsonl", func(b *bytes.Buffer) scenario.Writer { return scenario.NewJSONLWriter(b) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := scenario.RunGrid(context.Background(), grid, tc.writer(&buf)); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s output diverged from golden file;\ngot:\n%s\nwant:\n%s", tc.name, buf.Bytes(), want)
			}
		})
	}
}
