package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Axis is one swept parameter of a Grid: a param name plus the value
// list in exactly one of the typed slots. Integer params take Ints,
// probability-like params take Floats, enumeration params take
// Strings.
type Axis struct {
	// Param names the Spec field to sweep: "size", "cycles",
	// "view_size", "shards" or "repeats" (Ints); "loss_prob",
	// "crash_fraction" or "adversary_fraction" (Floats); "selector",
	// "topology", "wait", "loss" or "behavior" (Strings). The adversary
	// params materialize Spec.Adversary when the base leaves it nil.
	Param string `json:"param"`
	// Ints, Floats and Strings carry the swept values; exactly one
	// must be non-empty.
	Ints    []int     `json:"ints,omitempty"`
	Floats  []float64 `json:"floats,omitempty"`
	Strings []string  `json:"strings,omitempty"`
}

// length returns the number of swept values.
func (a Axis) length() int {
	return len(a.Ints) + len(a.Floats) + len(a.Strings)
}

// validate checks the axis shape: a known param and exactly one typed
// value list of the matching type.
func (a Axis) validate() error {
	filled := 0
	for _, n := range []int{len(a.Ints), len(a.Floats), len(a.Strings)} {
		if n > 0 {
			filled++
		}
	}
	if filled != 1 {
		return fmt.Errorf("scenario: axis %q needs values in exactly one of ints, floats or strings", a.Param)
	}
	switch a.Param {
	case "size", "cycles", "view_size", "shards", "repeats":
		if len(a.Ints) == 0 {
			return fmt.Errorf("scenario: axis %q sweeps an integer param; use ints", a.Param)
		}
	case "loss_prob", "crash_fraction", "adversary_fraction":
		if len(a.Floats) == 0 {
			return fmt.Errorf("scenario: axis %q sweeps a float param; use floats", a.Param)
		}
	case "selector", "topology", "wait", "loss", "behavior":
		if len(a.Strings) == 0 {
			return fmt.Errorf("scenario: axis %q sweeps a string param; use strings", a.Param)
		}
		// Enum axes are validated up front so a typo fails before any
		// cell runs, with the enum's own error message.
		for _, v := range a.Strings {
			var err error
			switch a.Param {
			case "selector":
				_, err = ParseSelector(v)
			case "topology":
				_, err = ParseTopology(v)
			case "wait":
				_, err = ParseWait(v)
			case "loss":
				_, err = ParseLoss(v)
			case "behavior":
				_, err = ParseBehavior(v)
			}
			if err != nil {
				return fmt.Errorf("scenario: axis %q: %w", a.Param, err)
			}
		}
	default:
		return fmt.Errorf("scenario: unknown axis param %q", a.Param)
	}
	return nil
}

// apply sets the axis's i-th value on the spec and returns the
// "param=value" label fragment.
func (a Axis) apply(s *Spec, i int) string {
	switch {
	case len(a.Ints) > 0:
		v := a.Ints[i]
		switch a.Param {
		case "size":
			s.Size = v
		case "cycles":
			s.Cycles = v
		case "view_size":
			s.ViewSize = v
		case "shards":
			s.Shards = v
		case "repeats":
			s.Repeats = v
		}
		return a.Param + "=" + strconv.Itoa(v)
	case len(a.Floats) > 0:
		v := a.Floats[i]
		switch a.Param {
		case "loss_prob":
			s.LossProb = v
		case "crash_fraction":
			s.CrashFraction = v
		case "adversary_fraction":
			adv := adversary(s)
			adv.Fraction = v
		}
		return a.Param + "=" + strconv.FormatFloat(v, 'g', -1, 64)
	default:
		// The labels use the raw swept string (identical to the enum's
		// wire name — validate checked it parses), keeping SeedTag
		// derivations byte-identical to the stringly-typed engine.
		v := a.Strings[i]
		switch a.Param {
		case "selector":
			s.Selector, _ = ParseSelector(v)
		case "topology":
			s.Topology, _ = ParseTopology(v)
		case "wait":
			s.Wait, _ = ParseWait(v)
		case "loss":
			s.Loss, _ = ParseLoss(v)
		case "behavior":
			adversary(s).Behavior, _ = ParseBehavior(v)
		}
		return a.Param + "=" + v
	}
}

// adversary returns the spec's own AdversarySpec for axis mutation,
// cloning the base's (Expand copies specs shallowly, so writing
// through an inherited pointer would leak into every other cell) or
// materializing a fresh one.
func adversary(s *Spec) *AdversarySpec {
	if s.Adversary == nil {
		s.Adversary = &AdversarySpec{}
	} else {
		cp := *s.Adversary
		s.Adversary = &cp
	}
	return s.Adversary
}

// Grid is a base Spec crossed with swept Axes. Expand produces one
// concrete Spec per point of the cross-product.
type Grid struct {
	Base Spec   `json:"base"`
	Axes []Axis `json:"axes,omitempty"`
}

// Expand returns the cross-product of the grid in row-major order (the
// first axis varies slowest), with every resulting spec validated.
// Each cell gets a canonical Label ("selector=seq,size=1000") and, when
// axes are present, its own deterministic Seed — Base.Seed XOR
// SeedTag(label) — so every cell draws an independent stream while the
// whole grid stays reproducible from one seed. A grid with no axes
// expands to the base spec with its seed untouched.
func (g Grid) Expand() ([]Spec, error) {
	for _, a := range g.Axes {
		if err := a.validate(); err != nil {
			return nil, err
		}
	}
	total := 1
	for _, a := range g.Axes {
		total *= a.length()
	}
	if total == 0 {
		return nil, fmt.Errorf("scenario: grid axis with no values")
	}
	out := make([]Spec, 0, total)
	idx := make([]int, len(g.Axes))
	for {
		spec := g.Base
		parts := make([]string, len(g.Axes))
		for d, a := range g.Axes {
			parts[d] = a.apply(&spec, idx[d])
		}
		if len(g.Axes) > 0 {
			spec.Label = strings.Join(parts, ",")
			spec.Seed = g.Base.Seed ^ SeedTag(parts...)
		}
		if _, err := spec.normalized(); err != nil {
			return nil, err
		}
		out = append(out, spec)
		d := len(idx) - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < g.Axes[d].length() {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			return out, nil
		}
	}
}

// SeedTag hashes label fragments into a 64-bit seed offset (FNV-1a
// over the fragments joined with "|"), so every grid cell — and every
// experiment-driver combination — draws an independent random stream.
// This is the exact hash the historical figure drivers used, which is
// what keeps their rewritten output byte-identical.
func SeedTag(parts ...string) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	for i, p := range parts {
		if i > 0 {
			mix("|")
		}
		mix(p)
	}
	return h
}

// ParseFile decodes a scenario file: either a Grid ({"base": {...},
// "axes": [...]}) or a bare Spec, detected by the presence of a
// top-level "base" key. Unknown fields are rejected so typos in
// hand-authored scenarios fail loudly instead of running the defaults.
func ParseFile(data []byte) (Grid, error) {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return Grid{}, fmt.Errorf("scenario: parse file: %w", err)
	}
	if _, isGrid := top["base"]; isGrid {
		var g Grid
		if err := strictUnmarshal(data, &g); err != nil {
			return Grid{}, fmt.Errorf("scenario: parse grid: %w", err)
		}
		return g, nil
	}
	var s Spec
	if err := strictUnmarshal(data, &s); err != nil {
		return Grid{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	return Grid{Base: s}, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
