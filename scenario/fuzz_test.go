package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSpecUnmarshal fuzzes the user-facing scenario decoding path
// (cmd/aggsim -scenario takes arbitrary JSON files): decoding must
// never panic, and any spec that decodes must round-trip
// Marshal→Unmarshal losslessly — the contract that lets tools rewrite
// scenario files without corrupting them. The corpus is seeded from the
// shipped example scenarios and the aggsim golden testdata.
func FuzzSpecUnmarshal(f *testing.F) {
	for _, dir := range []string{
		filepath.Join("..", "examples", "scenarios"),
		filepath.Join("..", "cmd", "aggsim", "testdata"),
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			f.Fatalf("seed corpus dir %s: %v", dir, err)
		}
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".json" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte(`{"size":8}`))
	f.Add([]byte(`{"size":100,"selector":"pm","churn":{"model":"oscillating","min":4,"max":8,"period":3}}`))
	f.Add([]byte(`{"size":16,"wait":"exponential","loss_prob":0.5,"values":[1e308,-0.0]}`))
	f.Add([]byte(`{"size":4,"size_estimation":{"epoch_cycles":2},"cycles":6}`))
	f.Add([]byte(`{"size":100,"adversary":{"fraction":0.05}}`))
	f.Add([]byte(`{"size":100,"adversary":{"behavior":"colluding","fraction":0.1,"target":42}}`))
	f.Add([]byte(`{"size":64,"adversary":{"behavior":"eclipse","fraction":0.25},"robust":{"trim":true,"trim_k":6}}`))
	f.Add([]byte(`{"size":50,"adversary":{"behavior":"selective-drop","fraction":0.2},"robust":{"clamp":true,"clamp_min":-10,"clamp_max":10,"trim":true}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		if err := json.Unmarshal(data, &s); err != nil {
			return // undecodable input is fine; panicking is not
		}
		// Validation must not panic either, whatever the spec says.
		_, _ = s.normalized()

		out, err := json.Marshal(s)
		if err != nil {
			// Non-finite float values are valid Go but not valid JSON;
			// such specs are unmarshalable only via ±1e309 overflow
			// tricks, which json.Unmarshal already rejects, so reaching
			// here means the fuzzer found infinities some other way.
			t.Skipf("marshal: %v", err)
		}
		var s2 Spec
		if err := json.Unmarshal(out, &s2); err != nil {
			t.Fatalf("re-unmarshal of marshaled spec failed: %v\njson: %s", err, out)
		}
		out2, err := json.Marshal(s2)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("spec round trip not lossless:\n first: %s\nsecond: %s", out, out2)
		}
	})
}
