package scenario

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Runner executes specs on a worker pool. The zero value is ready to
// use (one worker per GOMAXPROCS). Each worker keeps one reusable
// dynamic-overlay kernel (rebound per run via Resize/ReshapeAvg/
// Reseed), so steady-state sweeps allocate only per-run value vectors.
type Runner struct {
	// Workers bounds the pool (≤ 0 selects GOMAXPROCS). Sweeps of
	// sharded specs usually want Workers = 1 so the shards get the
	// cores instead of the pool.
	Workers int
}

// Run executes every spec (each repeated Spec.Repeats times) and
// streams Result rows to out in deterministic order: specs in slice
// order, repeats ascending, cycles ascending. Rows stream as runs
// finish — a completed run is emitted as soon as every earlier run has
// been — and out is flushed once at the end. The first error (in run
// order) aborts the sweep. Cancelling ctx aborts a mid-flight sweep
// within one cycle per in-flight run and returns the context's error.
func (r Runner) Run(ctx context.Context, specs []Spec, out Writer) error {
	norm := make([]Spec, len(specs))
	type unit struct{ cell, rep int }
	var units []unit
	for i, s := range specs {
		ns, err := s.normalized()
		if err != nil {
			return err
		}
		norm[i] = ns
		for rep := 0; rep < ns.Repeats; rep++ {
			units = append(units, unit{i, rep})
		}
	}
	if len(units) == 0 {
		return out.Flush()
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}

	var (
		mu       sync.Mutex
		next     int
		parked   = make(map[int][]Result)
		errs     = make([]error, len(units))
		writeErr error
		failed   atomic.Bool
	)
	// emit parks a finished run and drains the reorder buffer: rows
	// reach the writer strictly in unit order, under the mutex.
	emit := func(idx int, rows []Result) {
		mu.Lock()
		defer mu.Unlock()
		parked[idx] = rows
		for {
			ready, ok := parked[next]
			if !ok {
				return
			}
			delete(parked, next)
			if writeErr == nil && !failed.Load() {
				for _, row := range ready {
					if err := out.Write(row); err != nil {
						writeErr = err
						failed.Store(true)
						break
					}
				}
			}
			next++
		}
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var wk worker
			for i := range idxCh {
				if failed.Load() {
					emit(i, nil)
					continue
				}
				u := units[i]
				rows, err := wk.execute(ctx, norm[u.cell], u.cell, u.rep, nil)
				if err != nil {
					errs[i] = fmt.Errorf("%s rep %d: %w", norm[u.cell].describe(), u.rep, err)
					failed.Store(true)
					rows = nil
				}
				emit(i, rows)
			}
		}()
	}
	for i := range units {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if writeErr != nil {
		return writeErr
	}
	return out.Flush()
}

// RunGrid expands the grid and runs the resulting specs.
func (r Runner) RunGrid(ctx context.Context, g Grid, out Writer) error {
	specs, err := g.Expand()
	if err != nil {
		return err
	}
	return r.Run(ctx, specs, out)
}

// Run executes specs with a default Runner.
func Run(ctx context.Context, specs []Spec, out Writer) error {
	return Runner{}.Run(ctx, specs, out)
}

// RunGrid expands and executes a grid with a default Runner.
func RunGrid(ctx context.Context, g Grid, out Writer) error {
	return Runner{}.RunGrid(ctx, g, out)
}

// RunResult is the materialized outcome of RunSpec: every streamed row
// plus the repeat-0 artifacts the one-shot entry points historically
// returned.
type RunResult struct {
	// Spec is the executed spec with defaults applied (including any
	// AutoShards fallback).
	Spec Spec
	// Rows holds every Result row across all repeats, in stream order.
	Rows []Result
	// Sharded reports whether the sharded executor actually ran. It is
	// false when AutoShards fell back to sequential execution — either
	// because the axis combination is unshardable or because
	// sim.ResolveShards clamped the request to one shard.
	Sharded bool
	// Variances is repeat 0's field-0 variance trajectory (index 0 is
	// the initial variance); nil in size-estimation mode.
	Variances []float64
	// FinalValues is repeat 0's final field-0 column (every node's
	// approximation); nil in size-estimation mode.
	FinalValues []float64
	// Exchanges counts repeat 0's performed exchanges in wait mode
	// (zero in cycle mode, where every cycle performs exactly Size
	// elementary steps by construction).
	Exchanges int
	// Epochs holds repeat 0's per-epoch reports in size-estimation
	// mode.
	Epochs []EpochReport
}

// RunSpec executes one spec (all repeats, sequentially, on the calling
// goroutine) and materializes the outcome. It is the engine behind
// repro.Run; sweeps of many specs want Runner.Run, which parallelizes
// across runs and streams rows instead of materializing them.
func RunSpec(ctx context.Context, s Spec) (*RunResult, error) {
	ns, err := s.normalized()
	if err != nil {
		return nil, err
	}
	out := &RunResult{Spec: ns}
	var wk worker
	for rep := 0; rep < ns.Repeats; rep++ {
		var cp *capture
		if rep == 0 {
			cp = &capture{}
		}
		rows, err := wk.execute(ctx, ns, 0, rep, cp)
		if err != nil {
			return nil, fmt.Errorf("%s rep %d: %w", ns.describe(), rep, err)
		}
		if cp != nil {
			out.Sharded = cp.sharded
			out.FinalValues = cp.finalValues
			out.Exchanges = cp.exchanges
			out.Epochs = cp.epochs
			if ns.SizeEstimation == nil {
				out.Variances = make([]float64, 0, len(rows))
				for _, row := range rows {
					if row.Cycle >= 0 { // skip the pre-crash snapshot
						out.Variances = append(out.Variances, row.Variance)
					}
				}
			}
		}
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

// capture collects the repeat-0 artifacts RunSpec materializes beyond
// the row stream.
type capture struct {
	sharded     bool
	finalValues []float64
	exchanges   int
	epochs      []EpochReport
}

// worker is one pool worker's reusable state.
type worker struct {
	kern *sim.Kernel // reusable dynamic-overlay kernel
	vbuf []float64   // value-vector scratch
	cbuf []float64   // crash survivor scratch
	sbuf []float64   // quantile sort scratch
	hbuf []float64   // honest-column scratch
	mbuf []bool      // adversary-mask scratch
}

// execute runs one (spec, repeat) unit and returns its rows. The
// random stream is consumed in the fixed order overlay → values →
// crash permutation → kernel, so trajectories depend only on the spec
// and repeat index — and, for sequential complete-overlay runs, match
// the historical experiment drivers bit for bit. A non-nil cp receives
// the run's materialized artifacts beyond the rows.
func (wk *worker) execute(ctx context.Context, s Spec, cell, rep int, cp *capture) ([]Result, error) {
	seed := repSeed(s.Seed, rep)
	if s.SizeEstimation != nil {
		return runSizeEstimation(ctx, s, cell, rep, seed, cp)
	}
	rng := xrand.New(seed)
	complete := s.Topology == TopologyComplete
	sharded := s.Shards != 0 && s.Shards != 1

	var graph topology.Graph
	if !complete {
		g, err := topology.Build(s.Topology.kind(), s.Size, s.ViewSize, rng)
		if err != nil {
			return nil, err
		}
		graph = g
	}

	// Initial vector: supplied values or iid standard normals.
	n := s.Size
	values := resizeBuf(&wk.vbuf, n)
	if len(s.Values) > 0 {
		copy(values, s.Values)
	} else {
		for i := range values {
			values[i] = rng.NormFloat64()
		}
	}

	rows := make([]Result, 0, s.Cycles+2)
	if s.CrashFraction > 0 {
		// Pre-crash snapshot, then drop a random subset: survivors keep
		// their values, the crashed mass disappears (§4 crash model).
		rows = append(rows, wk.row(s, cell, rep, -1, values, nan))
		perm := rng.Perm(n)
		survivors := n - int(s.CrashFraction*float64(n))
		kept := resizeBuf(&wk.cbuf, survivors)
		for i := 0; i < survivors; i++ {
			kept[i] = values[perm[i]]
		}
		values, n = kept, survivors
	}

	if complete && !sharded && (s.Selector == SelectorPM || s.Selector == SelectorPMRand) {
		// Perfect-matching selectors require the explicit complete
		// graph (they reject the dynamic overlay). Consumes no
		// randomness, so building it after the crash step is safe.
		g, err := topology.NewComplete(n)
		if err != nil {
			return nil, err
		}
		graph = g
	}

	kern, err := wk.kernel(s, graph, n, rng)
	if err != nil {
		return nil, err
	}
	if cp != nil {
		cp.sharded = kern.Shards() > 1
	}
	for f := 0; f < kern.Fields(); f++ {
		if err := kern.SetValues(f, values); err != nil {
			return nil, err
		}
	}

	// Adversaries are drawn after the kernel is bound so baseline specs
	// consume exactly the historical random stream; the robust policy is
	// installed last so its trim bands are seeded from the honest
	// population only.
	if a := s.Adversary; a != nil {
		adv := rng.Perm(n)[:a.count(n)]
		if err := kern.SetAdversaries(a.Behavior.behavior(), adv, a.Magnitude, a.Target); err != nil {
			return nil, err
		}
	}
	if s.Robust != nil {
		kern.SetRobust(s.Robust.policy())
	}

	if s.Wait != WaitNone {
		rows, err := wk.runEvents(ctx, s, cell, rep, kern, cp)
		if err != nil {
			return nil, err
		}
		if cp != nil {
			cp.finalValues = append([]float64(nil), kern.Column(0)...)
		}
		return rows, nil
	}

	var churnSched sim.ChurnSchedule
	if s.Churn != nil {
		sched, err := s.Churn.schedule(s.Size)
		if err != nil {
			return nil, err
		}
		churnSched = sim.Churn(sched)
	}

	// With an adversary axis, rows reduce the honest population only:
	// the adversaries' pinned columns would otherwise dominate every
	// statistic and hide exactly the corruption the axis measures.
	first := wk.row(s, cell, rep, 0, wk.honestColumn(kern), nan)
	wk.stamp(s, kern, &first, first.Mean)
	rows = append(rows, first)
	mean0 := first.Mean
	var0, prevVar := first.Variance, first.Variance
	for c := 1; c <= s.Cycles; c++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if churnSched != nil {
			remove, add := churnSched.Plan(kern.CycleCount(), kern.Size())
			kern.RemoveRandom(remove)
			kern.Grow(add)
		}
		kern.Cycle()
		row := wk.row(s, cell, rep, c, wk.honestColumn(kern), prevVar)
		wk.stamp(s, kern, &row, mean0)
		rows = append(rows, row)
		prevVar = row.Variance
		if s.TargetRatio > 0 && row.Variance <= s.TargetRatio*var0 {
			break
		}
	}
	if cp != nil {
		cp.finalValues = append([]float64(nil), kern.Column(0)...)
	}
	return rows, nil
}

// kernel returns the kernel for a run: the worker's reusable
// dynamic-overlay kernel when the spec allows it (complete topology,
// seq pairing, cycle mode, all-average fields, matching shard count),
// or a freshly built one. Reuse is bit-equivalent to a fresh build
// (see sim.Kernel.Reseed).
func (wk *worker) kernel(s Spec, graph topology.Graph, n int, rng *xrand.Rand) (*sim.Kernel, error) {
	ops, err := s.ops()
	if err != nil {
		return nil, err
	}
	loss := s.lossModel()
	allAvg := true
	for _, op := range ops {
		if op != sim.OpAvg {
			allAvg = false
			break
		}
	}
	reusable := graph == nil && s.Selector == SelectorSeq && s.Wait == WaitNone && allAvg
	// Reuse only when the existing kernel's effective shard count is
	// exactly what a fresh build would resolve to (sim.New clamps the
	// request by GOMAXPROCS and n/2) — otherwise a warm worker and a
	// cold one would run the same spec with different shard layouts,
	// making the sweep scheduling-dependent.
	if reusable && wk.kern != nil && wk.kern.Shards() == sim.ResolveShards(s.Shards, n) {
		wk.kern.ReshapeAvg(len(ops), n)
		if err := wk.kern.Reseed(rng); err != nil {
			return nil, err
		}
		wk.kern.SetLoss(loss)
		return wk.kern, nil
	}
	cfg := sim.Config{
		Ops:  ops,
		Loss: loss,
		RNG:  rng,
	}
	if graph != nil {
		cfg.Graph = graph
	} else {
		cfg.Size = n
	}
	sharded := s.Shards != 0 && s.Shards != 1
	if sharded {
		cfg.Shards = s.Shards
		switch s.Selector {
		case SelectorPM:
			cfg.Selector = sim.NewPM()
		case SelectorRand:
			cfg.Selector = sim.NewRand()
		case SelectorPMRand:
			cfg.Selector = sim.NewPMRand()
		}
	} else {
		switch s.Wait {
		case WaitConstant, WaitExponential:
			cfg.Wait = s.Wait.policy()
		default:
			sel, err := s.Selector.selector()
			if err != nil {
				return nil, err
			}
			cfg.Selector = sel
		}
	}
	kern, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if reusable {
		wk.kern = kern
	}
	return kern, nil
}

// runEvents drives a wait-mode run: rows at every integer Δt.
func (wk *worker) runEvents(ctx context.Context, s Spec, cell, rep int, kern *sim.Kernel, cp *capture) ([]Result, error) {
	rows := make([]Result, 0, s.Cycles+1)
	first := wk.row(s, cell, rep, 0, kern.Column(0), nan)
	rows = append(rows, first)
	prevVar := first.Variance
	c := 0
	exchanges, err := kern.RunEvents(ctx, s.Cycles, func() {
		c++
		row := wk.row(s, cell, rep, c, kern.Column(0), prevVar)
		rows = append(rows, row)
		prevVar = row.Variance
	})
	if err != nil {
		return nil, err
	}
	if cp != nil {
		cp.exchanges = exchanges
	}
	return rows, nil
}

// honestColumn returns field 0's column with adversary entries
// filtered out (the column itself when no adversary axis is active).
// The returned slice is worker scratch, valid until the next call.
func (wk *worker) honestColumn(kern *sim.Kernel) []float64 {
	adv := kern.Adversaries()
	col := kern.Column(0)
	if len(adv) == 0 {
		return col
	}
	// The adversary index set is rebuilt every cycle because churn
	// renumbers nodes (RemoveNode swaps indices around).
	if cap(wk.mbuf) < len(col) {
		wk.mbuf = make([]bool, len(col))
	}
	mask := wk.mbuf[:len(col)]
	for i := range mask {
		mask[i] = false
	}
	for _, a := range adv {
		mask[a] = true
	}
	out := resizeBuf(&wk.hbuf, len(col))[:0]
	for i, v := range col {
		if !mask[i] {
			out = append(out, v)
		}
	}
	return out
}

// stamp fills the adversary-axis observables of a freshly reduced row:
// corruption relative to the initial honest mean and the cumulative
// robust-merge rejection count.
func (wk *worker) stamp(s Spec, kern *sim.Kernel, r *Result, mean0 float64) {
	if s.Adversary != nil {
		r.Corruption = math.Abs(r.Mean - mean0)
	}
	if s.Robust != nil {
		r.Rejected = float64(kern.RobustRejected())
	}
}

// row reduces one column snapshot into a Result.
func (wk *worker) row(s Spec, cell, rep, cycle int, col []float64, prevVar float64) Result {
	lo, hi := stats.MinMax(col)
	r := Result{
		Scenario:   s.Name,
		Label:      s.Label,
		Cell:       cell,
		Rep:        rep,
		Cycle:      cycle,
		Size:       len(col),
		Mean:       stats.Mean(col),
		Variance:   stats.Variance(col),
		Reduction:  nan,
		Min:        lo,
		Max:        hi,
		P10:        nan,
		P50:        nan,
		P90:        nan,
		Corruption: nan,
		Rejected:   nan,
	}
	if prevVar > 0 {
		r.Reduction = r.Variance / prevVar
	}
	if s.Quantiles {
		buf := append(wk.sbuf[:0], col...)
		sort.Float64s(buf)
		wk.sbuf = buf
		r.P10 = stats.QuantileSorted(buf, 0.10)
		r.P50 = stats.QuantileSorted(buf, 0.50)
		r.P90 = stats.QuantileSorted(buf, 0.90)
	}
	return r
}

// runSizeEstimation executes a §4 size-estimation spec: one row per
// epoch with the participants' estimate statistics.
func runSizeEstimation(ctx context.Context, s Spec, cell, rep int, seed uint64, cp *capture) ([]Result, error) {
	cfg, err := s.sizeSimConfig(seed)
	if err != nil {
		return nil, err
	}
	reports, err := epoch.RunSizeSimContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if cp != nil {
		cp.epochs = reports
	}
	rows := make([]Result, 0, len(reports))
	for _, rep0 := range reports {
		rows = append(rows, Result{
			Scenario:   s.Name,
			Label:      s.Label,
			Cell:       cell,
			Rep:        rep,
			Cycle:      rep0.EndCycle,
			Size:       rep0.SizeAtEnd,
			Mean:       rep0.EstimateMean,
			Variance:   nan,
			Reduction:  nan,
			Min:        rep0.EstimateMin,
			Max:        rep0.EstimateMax,
			P10:        nan,
			P50:        nan,
			P90:        nan,
			Corruption: nan,
			Rejected:   nan,
		})
	}
	return rows, nil
}

// resizeBuf returns *buf resized to n, growing the backing array as
// needed.
func resizeBuf(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
