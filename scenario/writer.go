package scenario

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// Result is one streamed reduction row: the state of one run (cell ×
// repeat) after one cycle (or Δt in wait mode, or epoch in
// size-estimation mode). Missing values — the reduction of cycle 0,
// percentiles when not requested, variance in size-estimation mode —
// are NaN, rendered as empty CSV cells and JSON nulls.
type Result struct {
	// Scenario and Label identify the spec (Spec.Name / Spec.Label).
	Scenario string `json:"scenario,omitempty"`
	Label    string `json:"label,omitempty"`
	// Cell is the spec's index within the executed batch; Rep the
	// repeat index; Cycle the cycle (wait mode: Δt; size estimation:
	// epoch-end cycle; crash specs: -1 marks the pre-crash snapshot).
	Cell  int `json:"cell"`
	Rep   int `json:"rep"`
	Cycle int `json:"cycle"`
	// Size is the live node count after this cycle.
	Size int `json:"size"`
	// Mean is field 0's empirical mean (size estimation: the mean
	// estimate across participants).
	Mean float64 `json:"mean"`
	// Variance is field 0's unbiased empirical variance.
	Variance float64 `json:"variance"`
	// Reduction is the convergence factor σ²ᵢ/σ²ᵢ₋₁.
	Reduction float64 `json:"reduction"`
	// Min and Max are field 0's extrema (size estimation: the estimate
	// range across participants).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// P10, P50 and P90 are field 0's percentiles when Spec.Quantiles
	// is set.
	P10 float64 `json:"p10"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	// Corruption is |honest mean − initial honest mean| when an
	// adversary axis is active (NaN otherwise). With adversaries
	// present, Size/Mean/Variance and friends reduce the honest
	// population only.
	Corruption float64 `json:"corruption"`
	// Rejected is the cumulative robust-merge rejection count when
	// countermeasures are active (NaN otherwise).
	Rejected float64 `json:"rejected"`
}

// Writer receives Result rows in deterministic order (cells in batch
// order, repeats in index order, cycles ascending) and is flushed once
// after the last row. Implementations need not be safe for concurrent
// use; the Runner serializes calls.
type Writer interface {
	Write(Result) error
	Flush() error
}

// csvColumns is the fixed CSV header.
const csvColumns = "scenario,label,cell,rep,cycle,size,mean,variance,reduction,min,max,p10,p50,p90,corruption,rejected"

// CSVWriter streams rows as comma-separated values with one header
// line, full round-trip float precision and empty cells for NaNs —
// the gnuplot/pandas-friendly default of cmd/aggsim -scenario.
type CSVWriter struct {
	w      *bufio.Writer
	header bool
}

// NewCSVWriter returns a CSV writer over w.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: bufio.NewWriter(w)}
}

// Write implements Writer.
func (c *CSVWriter) Write(r Result) error {
	if !c.header {
		c.header = true
		if _, err := c.w.WriteString(csvColumns + "\n"); err != nil {
			return err
		}
	}
	buf := make([]byte, 0, 160)
	buf = appendCSVString(buf, r.Scenario)
	buf = append(buf, ',')
	buf = appendCSVString(buf, r.Label)
	for _, v := range []int{r.Cell, r.Rep, r.Cycle, r.Size} {
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	for _, v := range []float64{r.Mean, r.Variance, r.Reduction, r.Min, r.Max, r.P10, r.P50, r.P90, r.Corruption, r.Rejected} {
		buf = append(buf, ',')
		if !math.IsNaN(v) {
			buf = appendFloat(buf, v)
		}
	}
	buf = append(buf, '\n')
	_, err := c.w.Write(buf)
	return err
}

// Flush implements Writer.
func (c *CSVWriter) Flush() error { return c.w.Flush() }

// appendCSVString appends s, quoting it if it contains a comma, quote
// or newline (labels like "selector=seq,size=1000" do).
func appendCSVString(buf []byte, s string) []byte {
	needsQuote := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' || c == '\r' {
			needsQuote = true
			break
		}
	}
	if !needsQuote {
		return append(buf, s...)
	}
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			buf = append(buf, '"')
		}
		buf = append(buf, s[i])
	}
	return append(buf, '"')
}

// JSONLWriter streams rows as JSON-lines with NaNs rendered as null
// (encoding/json rejects NaN, so rows are encoded by hand — the field
// set matches Result's json tags).
type JSONLWriter struct {
	w *bufio.Writer
}

// NewJSONLWriter returns a JSON-lines writer over w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Write implements Writer.
func (j *JSONLWriter) Write(r Result) error {
	buf := make([]byte, 0, 256)
	buf = append(buf, '{')
	if r.Scenario != "" {
		buf = appendJSONField(buf, "scenario")
		buf = strconv.AppendQuote(buf, r.Scenario)
	}
	if r.Label != "" {
		buf = appendJSONField(buf, "label")
		buf = strconv.AppendQuote(buf, r.Label)
	}
	for _, f := range [...]struct {
		key string
		v   int
	}{{"cell", r.Cell}, {"rep", r.Rep}, {"cycle", r.Cycle}, {"size", r.Size}} {
		buf = appendJSONField(buf, f.key)
		buf = strconv.AppendInt(buf, int64(f.v), 10)
	}
	for _, f := range [...]struct {
		key string
		v   float64
	}{
		{"mean", r.Mean}, {"variance", r.Variance}, {"reduction", r.Reduction},
		{"min", r.Min}, {"max", r.Max}, {"p10", r.P10}, {"p50", r.P50}, {"p90", r.P90},
		{"corruption", r.Corruption}, {"rejected", r.Rejected},
	} {
		buf = appendJSONField(buf, f.key)
		if math.IsNaN(f.v) {
			buf = append(buf, "null"...)
		} else {
			buf = appendFloat(buf, f.v)
		}
	}
	buf = append(buf, '}', '\n')
	_, err := j.w.Write(buf)
	return err
}

// Flush implements Writer.
func (j *JSONLWriter) Flush() error { return j.w.Flush() }

// appendJSONField appends `,"key":` (or `"key":` right after '{').
func appendJSONField(buf []byte, key string) []byte {
	if buf[len(buf)-1] != '{' {
		buf = append(buf, ',')
	}
	buf = append(buf, '"')
	buf = append(buf, key...)
	return append(buf, '"', ':')
}

// appendFloat renders a float with the shortest representation that
// round-trips, with infinities clamped to large literals JSON and CSV
// consumers can still parse. Stable across platforms, so golden files
// are portable.
func appendFloat(buf []byte, v float64) []byte {
	if math.IsInf(v, 1) {
		return append(buf, "1e999"...)
	}
	if math.IsInf(v, -1) {
		return append(buf, "-1e999"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// Collector is the in-memory Writer used by tests and by the
// experiment drivers that post-process rows into figure series.
type Collector struct {
	rows []Result
}

// Write implements Writer.
func (c *Collector) Write(r Result) error {
	c.rows = append(c.rows, r)
	return nil
}

// Flush implements Writer.
func (c *Collector) Flush() error { return nil }

// Results returns the collected rows in emission order.
func (c *Collector) Results() []Result { return c.rows }
