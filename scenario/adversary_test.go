package scenario_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/scenario"
)

// advSpec builds the canonical adversary smoke spec: 5% extreme-value
// reporters in a 400-node population.
func advSpec(robust *scenario.RobustSpec) scenario.Spec {
	return scenario.Spec{
		Name:      "adv",
		Size:      400,
		Cycles:    30,
		Seed:      7,
		Adversary: &scenario.AdversarySpec{Fraction: 0.05},
		Robust:    robust,
	}
}

// lastRow returns the final row of a materialized run.
func lastRow(t *testing.T, s scenario.Spec) scenario.Result {
	t.Helper()
	res, err := scenario.RunSpec(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows[len(res.Rows)-1]
}

// TestAdversaryCorruptionContained is the adversary smoke contract of
// ISSUE 10: with 5% extreme-value adversaries the baseline merge
// corrupts the honest mean by orders of magnitude more than the honest
// noise floor, while trimmed merge plus clamps keep the corruption
// within the honest population's own sampling scale.
func TestAdversaryCorruptionContained(t *testing.T) {
	baseline := lastRow(t, advSpec(nil))
	// The clamp bound is deliberately wider than the trim band: a clamp
	// tight enough to sit inside K·σ would pull the poison into the
	// acceptance band and legitimize it (see DESIGN.md).
	robust := lastRow(t, advSpec(&scenario.RobustSpec{
		Clamp: true, ClampMin: -100, ClampMax: 100,
		Trim: true,
	}))

	// The honest noise floor: mass conservation holds the honest mean
	// of an adversary-free run to within float rounding, so the
	// meaningful floor is the initial sampling error σ/√N ≈ 0.05.
	const noiseFloor = 0.05
	if baseline.Corruption < 10*noiseFloor {
		t.Fatalf("baseline corruption %g not > 10× noise floor %g", baseline.Corruption, noiseFloor)
	}
	if robust.Corruption > 10*noiseFloor {
		t.Fatalf("robust corruption %g exceeds bound %g", robust.Corruption, 10*noiseFloor)
	}
	if baseline.Corruption < 10*robust.Corruption {
		t.Fatalf("baseline corruption %g not ≥ 10× robust corruption %g", baseline.Corruption, robust.Corruption)
	}
	if robust.Rejected == 0 || math.IsNaN(robust.Rejected) {
		t.Fatalf("robust run rejected no exchanges (Rejected = %v)", robust.Rejected)
	}
	if !math.IsNaN(baseline.Rejected) {
		t.Fatalf("baseline run has Rejected = %v, want NaN", baseline.Rejected)
	}
	// Rows reduce the honest population only.
	if want := 400 - 20; baseline.Size != want {
		t.Fatalf("row size %d, want honest count %d", baseline.Size, want)
	}
}

// TestAdversaryBehaviors runs every behavior end to end: rows must
// carry a finite corruption and the honest-only population size.
func TestAdversaryBehaviors(t *testing.T) {
	for _, b := range []scenario.Behavior{
		scenario.BehaviorExtreme, scenario.BehaviorColluding,
		scenario.BehaviorSelectiveDrop, scenario.BehaviorEclipse,
	} {
		s := advSpec(nil)
		s.Adversary.Behavior = b
		s.Adversary.Target = 5
		row := lastRow(t, s)
		if math.IsNaN(row.Corruption) || math.IsInf(row.Corruption, 0) {
			t.Errorf("%s: corruption %v not finite", b, row.Corruption)
		}
		if row.Size != 380 {
			t.Errorf("%s: row size %d, want 380", b, row.Size)
		}
		// Colluding reporters drag the honest mean toward the target.
		if b == scenario.BehaviorColluding && row.Corruption < 1 {
			t.Errorf("colluding corruption %g, want ≥ 1 (target 5 vs mean ≈ 0)", row.Corruption)
		}
	}
}

// TestAdversarySharded: the sharded executor honors the axis — robust
// countermeasures must contain the corruption there too.
func TestAdversarySharded(t *testing.T) {
	s := advSpec(&scenario.RobustSpec{Trim: true})
	s.Shards = 2
	row := lastRow(t, s)
	if row.Corruption > 0.5 {
		t.Fatalf("sharded robust corruption %g, want ≤ 0.5", row.Corruption)
	}
	if row.Rejected == 0 || math.IsNaN(row.Rejected) {
		t.Fatalf("sharded robust run rejected no exchanges (Rejected = %v)", row.Rejected)
	}
}

// TestAdversaryKernelReuseIsolated: a pool worker that just ran an
// adversary spec must hand later specs a clean kernel — the reused
// kernel's adversary and robust state must not leak across runs.
func TestAdversaryKernelReuseIsolated(t *testing.T) {
	clean := scenario.Spec{Name: "clean", Size: 200, Cycles: 5, Seed: 3}
	run := func(specs []scenario.Spec) []scenario.Result {
		var col scenario.Collector
		if err := (scenario.Runner{Workers: 1}).Run(context.Background(), specs, &col); err != nil {
			t.Fatal(err)
		}
		return col.Results()
	}
	alone := run([]scenario.Spec{clean})
	after := run([]scenario.Spec{advSpec(&scenario.RobustSpec{Trim: true}), clean})
	tail := after[len(after)-len(alone):]
	for i := range alone {
		a, b := alone[i], tail[i]
		// NaN-normalize for DeepEqual.
		if a.Cell != b.Cell {
			a.Cell, b.Cell = 0, 0
		}
		if !reflect.DeepEqual(nanStripped(a), nanStripped(b)) {
			t.Fatalf("row %d differs after adversary run on the same worker:\nalone: %+v\nafter: %+v", i, alone[i], tail[i])
		}
	}
}

// nanStripped replaces NaNs with a sentinel so DeepEqual can compare.
func nanStripped(r scenario.Result) scenario.Result {
	for _, f := range []*float64{&r.Mean, &r.Variance, &r.Reduction, &r.Min, &r.Max, &r.P10, &r.P50, &r.P90, &r.Corruption, &r.Rejected} {
		if math.IsNaN(*f) {
			*f = -424242
		}
	}
	return r
}

// TestAdversarySpecValidation exercises the axis's composition rules.
func TestAdversarySpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*scenario.Spec)
	}{
		{"fraction-zero", func(s *scenario.Spec) { s.Adversary.Fraction = 0 }},
		{"fraction-one", func(s *scenario.Spec) { s.Adversary.Fraction = 1 }},
		{"no-honest", func(s *scenario.Spec) { s.Size = 4; s.Adversary.Fraction = 0.9 }},
		{"no-adversary", func(s *scenario.Spec) { s.Size = 10; s.Adversary.Fraction = 0.01 }},
		{"wait-mode", func(s *scenario.Spec) { s.Wait = scenario.WaitConstant }},
		{"eclipse-pm", func(s *scenario.Spec) {
			s.Adversary.Behavior = scenario.BehaviorEclipse
			s.Selector = scenario.SelectorPM
		}},
	}
	for _, tc := range cases {
		s := advSpec(nil)
		tc.mut(&s)
		if _, err := scenario.RunSpec(context.Background(), s); err == nil {
			t.Errorf("%s: spec validated, want error", tc.name)
		}
	}
	for _, tc := range []struct {
		name string
		r    scenario.RobustSpec
	}{
		{"empty-robust", scenario.RobustSpec{}},
		{"clamp-empty-range", scenario.RobustSpec{Clamp: true, ClampMin: 1, ClampMax: 1}},
		{"negative-trim-k", scenario.RobustSpec{Trim: true, TrimK: -1}},
	} {
		s := advSpec(nil)
		s.Robust = &tc.r
		if _, err := scenario.RunSpec(context.Background(), s); err == nil {
			t.Errorf("%s: spec validated, want error", tc.name)
		}
	}
}
