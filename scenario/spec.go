// Package scenario is the public declarative description of this
// repository's experiments. A Spec is one serializable scenario — size,
// cycles, fields, topology, selector, wait policy, loss, churn,
// sharding, repeats, seed — and a Grid expands a base Spec crossed with
// swept Axes into the full cross-product of concrete runs. A Runner
// executes specs on a worker pool (one reusable sim.Kernel per worker),
// streams per-cycle reductions (mean, variance, convergence factor,
// extrema, optional percentiles) as Result rows, and emits them through
// pluggable Writers (CSV, JSON-lines, in-memory collector).
//
// Most callers want the repro package's front door instead:
// repro.Run(ctx, spec) executes one Spec and materializes the outcome,
// repro.RunGrid(ctx, grid, opts) streams a sweep. Every paper figure
// and ablation in internal/experiments is a thin Spec builder over this
// engine, and cmd/aggsim -scenario runs user-authored JSON scenarios
// without recompiling.
//
// Determinism contract: a run's trajectory depends only on the concrete
// Spec and the repeat index — per-repeat generators are derived as
// xrand.New(Seed + 0x9e3779b97f4a7c15·(rep+1)), the historical
// derivation of the experiment harness, so the rewritten figure
// drivers reproduce their pre-scenario output byte for byte. RawSeed
// inverts the derivation for repeat 0, giving the exact stream the
// historical one-shot entry points (repro.Simulate and friends) used.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/churn"
	"repro/internal/epoch"
	"repro/internal/sim"
)

// DefaultCycles is the cycle count a Spec runs when none is given —
// the paper's standard 30-cycle horizon.
const DefaultCycles = 30

// DefaultViewSize is the degree parameter of non-complete overlays
// when none is given (20, the paper's choice).
const DefaultViewSize = 20

// AutoShards selects one shard per GOMAXPROCS worker (sim.AutoShards).
// Unlike an explicit shard count, AutoShards is a preference, not a
// demand: combinations the sharded executor does not support fall back
// to the exact sequential path instead of failing (see Spec.Shards).
const AutoShards = sim.AutoShards

// EpochReport is one epoch's converged output of the §4 size estimator
// (RunResult.Epochs).
type EpochReport = epoch.EpochReport

// ChurnSpec prescribes per-cycle membership churn: a size model
// (constant or oscillating) plus a constant per-cycle fluctuation.
// Joiners enter with zero-valued fields, the §4 indicator convention.
type ChurnSpec struct {
	// Model is "constant" (default: hold the initial size) or
	// "oscillating" (the Figure 4 day/night swing between Min and Max).
	Model string `json:"model,omitempty"`
	// Min and Max bound the oscillation; ignored by the constant model.
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
	// Period is the oscillation period in cycles.
	Period int `json:"period,omitempty"`
	// Fluctuation is the per-cycle node turnover on top of the drift.
	Fluctuation int `json:"fluctuation,omitempty"`
}

// schedule translates the spec into the churn package's schedule.
func (c *ChurnSpec) schedule(initialSize int) (churn.Schedule, error) {
	s := churn.Schedule{Fluctuation: c.Fluctuation}
	switch c.Model {
	case "", "constant":
		s.Model = churn.Constant{N: initialSize}
	case "oscillating":
		if c.Min < 2 || c.Max < c.Min || c.Period < 1 {
			return s, fmt.Errorf("scenario: oscillating churn needs 2 ≤ min ≤ max and period ≥ 1, got min=%d max=%d period=%d", c.Min, c.Max, c.Period)
		}
		s.Model = churn.Oscillating{Min: c.Min, Max: c.Max, Period: c.Period}
	default:
		return s, fmt.Errorf("scenario: unknown churn model %q (want constant or oscillating)", c.Model)
	}
	return s, nil
}

// SizeEstimationSpec switches a Spec to the §4 application: network
// size estimation by anti-entropy counting with epoch restarts under
// the spec's churn schedule. One Result row is emitted per epoch
// (mean/min/max of the participants' estimates, actual size at epoch
// end).
type SizeEstimationSpec struct {
	// EpochCycles is the epoch length in cycles (default 30).
	EpochCycles int `json:"epoch_cycles,omitempty"`
	// Instances is the number of concurrent estimation instances per
	// epoch (default 1, the paper's basic mechanism).
	Instances int `json:"instances,omitempty"`
}

// Spec describes one concrete scenario. The zero value of every
// optional field selects the paper's defaults: a single average field
// on the complete overlay with seq pairing, lossless exchanges, no
// churn, exact sequential execution, one repeat.
type Spec struct {
	// Name labels the scenario in Result rows and output files.
	Name string `json:"name,omitempty"`
	// Label carries the swept-axis assignment ("selector=seq,size=1000")
	// when the spec came out of Grid.Expand; empty for hand-built specs.
	Label string `json:"label,omitempty"`
	// Size is the network size N (≥ 2; ≥ 4 for size estimation).
	Size int `json:"size"`
	// Cycles is the horizon: AVG cycles, Δt units in wait mode, or
	// total cycles in size-estimation mode (default 30).
	Cycles int `json:"cycles,omitempty"`
	// Ops lists the per-field merge operators ("avg", "min", "max");
	// empty means a single average field. Every field is initialized
	// with the same value vector.
	Ops []string `json:"ops,omitempty"`
	// Selector is the GETPAIR implementation (default SelectorSeq, the
	// practical protocol).
	Selector Selector `json:"selector,omitempty"`
	// Topology is the overlay (default TopologyComplete).
	Topology Topology `json:"topology,omitempty"`
	// ViewSize is the degree parameter of non-complete overlays
	// (default 20).
	ViewSize int `json:"view_size,omitempty"`
	// Wait switches to event-based execution with constant or
	// exponential waiting times (§1.1). WaitNone keeps cycle-based
	// runs.
	Wait Wait `json:"wait,omitempty"`
	// Loss is the message-loss model. LossAuto with LossProb > 0
	// defaults to LossReply in cycle mode and LossSymmetric in wait
	// mode, matching the historical semantics of each mode.
	Loss Loss `json:"loss,omitempty"`
	// LossProb is the per-message drop probability of the loss model.
	LossProb float64 `json:"loss_prob,omitempty"`
	// Churn, when non-nil, applies per-cycle membership churn.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// CrashFraction kills this fraction of nodes right after
	// initialization (their value mass disappears); a pre-crash
	// snapshot row is emitted with Cycle = -1. Requires the complete
	// topology.
	CrashFraction float64 `json:"crash_fraction,omitempty"`
	// SizeEstimation, when non-nil, runs the §4 size estimator instead
	// of a plain aggregation run.
	SizeEstimation *SizeEstimationSpec `json:"size_estimation,omitempty"`
	// Shards selects the executor: 0 (default) the exact sequential
	// path, ≥ 2 the sharded tournament executor, AutoShards (-1) one
	// shard per GOMAXPROCS worker. The sharded executor supports the
	// complete topology with any of the built-in selectors (pm and
	// pmrand additionally need an even size and no churn); an explicit
	// count on an unsupported combination is an error, while AutoShards
	// falls back to sequential execution (RunResult.Sharded reports
	// which executor actually ran).
	Shards int `json:"shards,omitempty"`
	// Repeats is the number of independent repetitions (default 1).
	Repeats int `json:"repeats,omitempty"`
	// Seed seeds the scenario; repeat r derives its own stream from
	// Seed + 0x9e3779b97f4a7c15·(r+1).
	Seed uint64 `json:"seed,omitempty"`
	// Values supplies the initial vector (length Size); empty draws
	// iid standard normal values, the paper's uncorrelated start.
	Values []float64 `json:"values,omitempty"`
	// TargetRatio, when > 0, stops a run early once the field-0
	// variance falls to TargetRatio·σ₀² (cycle mode only).
	TargetRatio float64 `json:"target_ratio,omitempty"`
	// Quantiles adds the P10/P50/P90 percentiles of field 0 to every
	// emitted row (one extra sort per cycle).
	Quantiles bool `json:"quantiles,omitempty"`
}

// shardable reports whether the sharded executor supports the spec's
// combination of axes (after enum defaults are applied).
func (s Spec) shardable() bool {
	if s.Topology != TopologyComplete || s.Wait != WaitNone ||
		s.SizeEstimation != nil {
		return false
	}
	switch s.Selector {
	case SelectorSeq, SelectorRand:
		return true
	case SelectorPM, SelectorPMRand:
		// The matching halves need a fixed even population.
		return s.Size%2 == 0 && s.Churn == nil
	default:
		return false
	}
}

// normalized returns a copy of the spec with defaults applied, or an
// error describing the first invalid or unsupported combination.
func (s Spec) normalized() (Spec, error) {
	minSize := 2
	if s.SizeEstimation != nil {
		minSize = 4
	}
	if s.Size < minSize {
		return s, fmt.Errorf("scenario: %s needs size ≥ %d, got %d", s.describe(), minSize, s.Size)
	}
	if s.Cycles == 0 {
		s.Cycles = DefaultCycles
	}
	if s.Cycles < 1 {
		return s, fmt.Errorf("scenario: %s needs cycles ≥ 1, got %d", s.describe(), s.Cycles)
	}
	if !s.Selector.valid() || !s.Topology.valid() || !s.Wait.valid() || !s.Loss.valid() {
		return s, fmt.Errorf("scenario: %s: out-of-range enum value (selector=%d topology=%d wait=%d loss=%d)",
			s.describe(), s.Selector, s.Topology, s.Wait, s.Loss)
	}
	if s.Selector == SelectorDefault {
		s.Selector = SelectorSeq
	}
	if s.Topology == TopologyDefault {
		s.Topology = TopologyComplete
	}
	if s.ViewSize == 0 {
		s.ViewSize = DefaultViewSize
	}
	if s.Repeats == 0 {
		s.Repeats = 1
	}
	if s.Repeats < 1 {
		return s, fmt.Errorf("scenario: %s needs repeats ≥ 1, got %d", s.describe(), s.Repeats)
	}
	if len(s.Values) > 0 && len(s.Values) != s.Size {
		return s, fmt.Errorf("scenario: %s: values length %d does not match size %d", s.describe(), len(s.Values), s.Size)
	}
	if _, err := s.ops(); err != nil {
		return s, err
	}
	if s.LossProb < 0 || s.LossProb >= 1 {
		return s, fmt.Errorf("scenario: %s: loss_prob must be in [0, 1), got %g", s.describe(), s.LossProb)
	}
	if s.Loss == LossAuto && s.LossProb > 0 {
		if s.Wait != WaitNone {
			s.Loss = LossSymmetric
		} else {
			s.Loss = LossReply
		}
	}
	if s.CrashFraction < 0 || s.CrashFraction >= 1 {
		return s, fmt.Errorf("scenario: %s: crash_fraction must be in [0, 1), got %g", s.describe(), s.CrashFraction)
	}
	complete := s.Topology == TopologyComplete
	if s.CrashFraction > 0 {
		if !complete {
			return s, fmt.Errorf("scenario: %s: crash_fraction requires the complete topology", s.describe())
		}
		if survivors := s.Size - int(s.CrashFraction*float64(s.Size)); survivors < 2 {
			return s, fmt.Errorf("scenario: %s: crash_fraction %g leaves < 2 survivors", s.describe(), s.CrashFraction)
		}
	}
	if s.Churn != nil {
		if !complete {
			return s, fmt.Errorf("scenario: %s: churn requires the complete topology (dynamic overlay)", s.describe())
		}
		if s.Selector == SelectorPM || s.Selector == SelectorPMRand {
			return s, fmt.Errorf("scenario: %s: churn does not compose with the %s selector (perfect matchings need a fixed even population)", s.describe(), s.Selector)
		}
		if _, err := s.Churn.schedule(s.Size); err != nil {
			return s, err
		}
	}
	if s.Shards == AutoShards && !s.shardable() {
		// AutoShards asks for the fastest supported executor, not for
		// sharding per se; an unshardable combination runs the exact
		// sequential path (RunResult.Sharded reports the outcome).
		s.Shards = 0
	}
	switch s.Wait {
	case WaitNone:
	default:
		if s.Selector != SelectorSeq {
			return s, fmt.Errorf("scenario: %s: wait mode replaces pair selection; selector must be left default", s.describe())
		}
		if s.Churn != nil || s.CrashFraction > 0 || s.Shards != 0 || s.TargetRatio > 0 {
			return s, fmt.Errorf("scenario: %s: wait mode does not compose with churn, crash, shards or target_ratio", s.describe())
		}
	}
	if s.Shards != 0 && s.Shards != 1 {
		if s.Shards < -1 {
			return s, fmt.Errorf("scenario: %s: shards must be ≥ 0 or -1 (auto), got %d", s.describe(), s.Shards)
		}
		if !complete {
			return s, fmt.Errorf("scenario: %s: sharded execution requires the complete topology", s.describe())
		}
		switch s.Selector {
		case SelectorSeq, SelectorRand:
		case SelectorPM, SelectorPMRand:
			if s.Size%2 != 0 {
				return s, fmt.Errorf("scenario: %s: sharded %s pairing needs an even size, got %d", s.describe(), s.Selector, s.Size)
			}
			if s.Churn != nil {
				return s, fmt.Errorf("scenario: %s: sharded %s pairing does not compose with churn", s.describe(), s.Selector)
			}
		default:
			return s, fmt.Errorf("scenario: %s: sharded execution does not support selector %q", s.describe(), s.Selector)
		}
	}
	if s.TargetRatio < 0 || s.TargetRatio >= 1 {
		if s.TargetRatio != 0 {
			return s, fmt.Errorf("scenario: %s: target_ratio must be in (0, 1), got %g", s.describe(), s.TargetRatio)
		}
	}
	if se := s.SizeEstimation; se != nil {
		norm := *se
		if norm.EpochCycles == 0 {
			norm.EpochCycles = DefaultCycles
		}
		if norm.Instances == 0 {
			norm.Instances = 1
		}
		if norm.EpochCycles < 1 || norm.Instances < 1 {
			return s, fmt.Errorf("scenario: %s: size estimation needs epoch_cycles ≥ 1 and instances ≥ 1", s.describe())
		}
		if s.Cycles < norm.EpochCycles {
			return s, fmt.Errorf("scenario: %s: cycles (%d) shorter than one epoch (%d)", s.describe(), s.Cycles, norm.EpochCycles)
		}
		if s.Selector != SelectorSeq || !complete || s.Wait != WaitNone || s.Shards != 0 ||
			s.CrashFraction > 0 || s.Loss != LossAuto && s.Loss != LossNone || len(s.Ops) > 0 || s.TargetRatio > 0 {
			return s, fmt.Errorf("scenario: %s: size estimation composes only with size, cycles, churn, repeats and seed", s.describe())
		}
		s.SizeEstimation = &norm
	}
	return s, nil
}

// describe names the spec in error messages.
func (s Spec) describe() string {
	switch {
	case s.Name != "" && s.Label != "":
		return fmt.Sprintf("spec %q (%s)", s.Name, s.Label)
	case s.Name != "":
		return fmt.Sprintf("spec %q", s.Name)
	case s.Label != "":
		return fmt.Sprintf("spec (%s)", s.Label)
	default:
		return "spec"
	}
}

// ops parses the per-field merge operators.
func (s Spec) ops() ([]sim.Op, error) {
	if len(s.Ops) == 0 {
		return []sim.Op{sim.OpAvg}, nil
	}
	out := make([]sim.Op, len(s.Ops))
	for f, name := range s.Ops {
		switch name {
		case "avg":
			out[f] = sim.OpAvg
		case "min":
			out[f] = sim.OpMin
		case "max":
			out[f] = sim.OpMax
		default:
			return nil, fmt.Errorf("scenario: %s: unknown op %q (want avg, min or max)", s.describe(), name)
		}
	}
	return out, nil
}

// lossModel builds the sim loss model for a normalized spec (nil for
// lossless).
func (s Spec) lossModel() sim.LossModel {
	if s.LossProb <= 0 {
		return nil
	}
	switch s.Loss {
	case LossSymmetric:
		return sim.SymmetricLoss{P: s.LossProb}
	case LossReply:
		return sim.ReplyLoss{P: s.LossProb}
	default:
		return nil
	}
}

// sizeSimConfig translates a normalized size-estimation spec into the
// epoch package's configuration, seeded with the concrete per-repeat
// seed.
func (s Spec) sizeSimConfig(seed uint64) (epoch.SizeSimConfig, error) {
	cfg := epoch.SizeSimConfig{
		InitialSize: s.Size,
		EpochCycles: s.SizeEstimation.EpochCycles,
		TotalCycles: s.Cycles,
		Instances:   s.SizeEstimation.Instances,
		Seed:        seed,
	}
	if s.Churn != nil {
		sched, err := s.Churn.schedule(s.Size)
		if err != nil {
			return cfg, err
		}
		cfg.Churn = sched
	}
	return cfg, nil
}

// MarshalIndent renders the spec as indented JSON (for examples and
// golden files).
func (s Spec) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// seedStep is the golden-ratio stride of the per-repeat seed
// derivation (see repSeed).
const seedStep = 0x9e3779b97f4a7c15

// repSeed derives repeat r's seed from the spec seed — the historical
// derivation of the experiment harness's forEachRun, kept bit-exact so
// the rewritten figure drivers reproduce their pre-scenario output.
func repSeed(seed uint64, rep int) uint64 {
	return seed + seedStep*uint64(rep+1)
}

// RawSeed returns the Spec.Seed under which repeat 0 consumes exactly
// the random stream xrand.New(seed) — the seed vocabulary of the
// historical one-shot entry points (repro.Simulate, SimulateAsync,
// EstimateSizeUnderChurn). The deprecated wrappers use it to stay
// byte-identical across the Run redesign; new callers should treat
// Spec.Seed as opaque and simply pick one.
func RawSeed(seed uint64) uint64 {
	return seed - seedStep // repSeed(·, 0) adds one stride back
}

// nan is the missing-value marker used in Result rows.
var nan = math.NaN()
