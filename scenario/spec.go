// Package scenario is the public declarative description of this
// repository's experiments. A Spec is one serializable scenario — size,
// cycles, fields, topology, selector, wait policy, loss, churn,
// sharding, repeats, seed — and a Grid expands a base Spec crossed with
// swept Axes into the full cross-product of concrete runs. A Runner
// executes specs on a worker pool (one reusable sim.Kernel per worker),
// streams per-cycle reductions (mean, variance, convergence factor,
// extrema, optional percentiles) as Result rows, and emits them through
// pluggable Writers (CSV, JSON-lines, in-memory collector).
//
// Most callers want the repro package's front door instead:
// repro.Run(ctx, spec) executes one Spec and materializes the outcome,
// repro.RunGrid(ctx, grid, opts) streams a sweep. Every paper figure
// and ablation in internal/experiments is a thin Spec builder over this
// engine, and cmd/aggsim -scenario runs user-authored JSON scenarios
// without recompiling.
//
// Determinism contract: a run's trajectory depends only on the concrete
// Spec and the repeat index — per-repeat generators are derived as
// xrand.New(Seed + 0x9e3779b97f4a7c15·(rep+1)), the historical
// derivation of the experiment harness, so the rewritten figure
// drivers reproduce their pre-scenario output byte for byte. RawSeed
// inverts the derivation for repeat 0, giving the exact stream the
// historical one-shot entry points (repro.Simulate and friends) used.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/churn"
	"repro/internal/epoch"
	"repro/internal/robust"
	"repro/internal/sim"
)

// DefaultCycles is the cycle count a Spec runs when none is given —
// the paper's standard 30-cycle horizon.
const DefaultCycles = 30

// DefaultViewSize is the degree parameter of non-complete overlays
// when none is given (20, the paper's choice).
const DefaultViewSize = 20

// AutoShards selects one shard per GOMAXPROCS worker (sim.AutoShards).
// Unlike an explicit shard count, AutoShards is a preference, not a
// demand: combinations the sharded executor does not support fall back
// to the exact sequential path instead of failing (see Spec.Shards).
const AutoShards = sim.AutoShards

// EpochReport is one epoch's converged output of the §4 size estimator
// (RunResult.Epochs).
type EpochReport = epoch.EpochReport

// ChurnSpec prescribes per-cycle membership churn: a size model
// (constant or oscillating) plus a constant per-cycle fluctuation.
// Joiners enter with zero-valued fields, the §4 indicator convention.
type ChurnSpec struct {
	// Model is "constant" (default: hold the initial size) or
	// "oscillating" (the Figure 4 day/night swing between Min and Max).
	Model string `json:"model,omitempty"`
	// Min and Max bound the oscillation; ignored by the constant model.
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
	// Period is the oscillation period in cycles.
	Period int `json:"period,omitempty"`
	// Fluctuation is the per-cycle node turnover on top of the drift.
	Fluctuation int `json:"fluctuation,omitempty"`
}

// schedule translates the spec into the churn package's schedule.
func (c *ChurnSpec) schedule(initialSize int) (churn.Schedule, error) {
	s := churn.Schedule{Fluctuation: c.Fluctuation}
	switch c.Model {
	case "", "constant":
		s.Model = churn.Constant{N: initialSize}
	case "oscillating":
		if c.Min < 2 || c.Max < c.Min || c.Period < 1 {
			return s, fmt.Errorf("scenario: oscillating churn needs 2 ≤ min ≤ max and period ≥ 1, got min=%d max=%d period=%d", c.Min, c.Max, c.Period)
		}
		s.Model = churn.Oscillating{Min: c.Min, Max: c.Max, Period: c.Period}
	default:
		return s, fmt.Errorf("scenario: unknown churn model %q (want constant or oscillating)", c.Model)
	}
	return s, nil
}

// SizeEstimationSpec switches a Spec to the §4 application: network
// size estimation by anti-entropy counting with epoch restarts under
// the spec's churn schedule. One Result row is emitted per epoch
// (mean/min/max of the participants' estimates, actual size at epoch
// end).
type SizeEstimationSpec struct {
	// EpochCycles is the epoch length in cycles (default 30).
	EpochCycles int `json:"epoch_cycles,omitempty"`
	// Instances is the number of concurrent estimation instances per
	// epoch (default 1, the paper's basic mechanism).
	Instances int `json:"instances,omitempty"`
}

// DefaultAdversaryMagnitude is the extreme-value report magnitude when
// none is given — far outside the iid standard-normal start, so one
// uncontained reporter visibly poisons the mean.
const DefaultAdversaryMagnitude = 1000

// DefaultTrimK is the trimmed-merge acceptance band width (in running
// scale units) when none is given.
const DefaultTrimK = 8

// AdversarySpec converts a fraction of the population to Byzantine
// behavior. Adversary nodes never adopt merges — they answer every
// exchange with a pinned report (extreme magnitude, colluding target,
// or their unchanged draw for selective droppers) while honest peers
// faithfully average the poison in. Eclipse adversaries additionally
// capture their victims' peer sampling: once an honest node exchanges
// with one, its future initiations are redirected to adversaries.
// Result rows reduce the honest population only, with the Corruption
// column tracking |honest mean − initial honest mean|.
type AdversarySpec struct {
	// Behavior selects the misbehavior (default extreme-value).
	Behavior Behavior `json:"behavior,omitempty"`
	// Fraction is the adversarial fraction of the population; it must
	// place at least one adversary and leave at least two honest nodes.
	Fraction float64 `json:"fraction"`
	// Magnitude is the extreme-value report (default 1000).
	Magnitude float64 `json:"magnitude,omitempty"`
	// Target is the pinned report of colluding and eclipse adversaries
	// (default 0).
	Target float64 `json:"target,omitempty"`
}

// count returns the adversary count for a population of n.
func (a *AdversarySpec) count(n int) int {
	return int(a.Fraction * float64(n))
}

// RobustSpec enables robust-merge countermeasures. Clamping bounds
// every peer report to [ClampMin, ClampMax] before it is merged;
// trimming rejects exchanges whose report deviates from the node's
// running estimate of the honest delta distribution by more than TrimK
// scale units (rejections are counted in the Rejected column). At
// least one countermeasure must be enabled.
type RobustSpec struct {
	// Clamp bounds accepted peer reports to [ClampMin, ClampMax].
	Clamp    bool    `json:"clamp,omitempty"`
	ClampMin float64 `json:"clamp_min,omitempty"`
	ClampMax float64 `json:"clamp_max,omitempty"`
	// Trim rejects exchanges outside the running acceptance band.
	Trim bool `json:"trim,omitempty"`
	// TrimK is the acceptance band width in scale units (default 8).
	TrimK float64 `json:"trim_k,omitempty"`
}

// policy translates a normalized spec into the kernel's merge policy.
func (r *RobustSpec) policy() robust.Policy {
	return robust.Policy{
		Clamp:    r.Clamp,
		ClampMin: r.ClampMin,
		ClampMax: r.ClampMax,
		Trim:     r.Trim,
		TrimK:    r.TrimK,
	}
}

// Spec describes one concrete scenario. The zero value of every
// optional field selects the paper's defaults: a single average field
// on the complete overlay with seq pairing, lossless exchanges, no
// churn, exact sequential execution, one repeat.
type Spec struct {
	// Name labels the scenario in Result rows and output files.
	Name string `json:"name,omitempty"`
	// Label carries the swept-axis assignment ("selector=seq,size=1000")
	// when the spec came out of Grid.Expand; empty for hand-built specs.
	Label string `json:"label,omitempty"`
	// Size is the network size N (≥ 2; ≥ 4 for size estimation).
	Size int `json:"size"`
	// Cycles is the horizon: AVG cycles, Δt units in wait mode, or
	// total cycles in size-estimation mode (default 30).
	Cycles int `json:"cycles,omitempty"`
	// Ops lists the per-field merge operators ("avg", "min", "max");
	// empty means a single average field. Every field is initialized
	// with the same value vector.
	Ops []string `json:"ops,omitempty"`
	// Selector is the GETPAIR implementation (default SelectorSeq, the
	// practical protocol).
	Selector Selector `json:"selector,omitempty"`
	// Topology is the overlay (default TopologyComplete).
	Topology Topology `json:"topology,omitempty"`
	// ViewSize is the degree parameter of non-complete overlays
	// (default 20).
	ViewSize int `json:"view_size,omitempty"`
	// Wait switches to event-based execution with constant or
	// exponential waiting times (§1.1). WaitNone keeps cycle-based
	// runs.
	Wait Wait `json:"wait,omitempty"`
	// Loss is the message-loss model. LossAuto with LossProb > 0
	// defaults to LossReply in cycle mode and LossSymmetric in wait
	// mode, matching the historical semantics of each mode.
	Loss Loss `json:"loss,omitempty"`
	// LossProb is the per-message drop probability of the loss model.
	LossProb float64 `json:"loss_prob,omitempty"`
	// Churn, when non-nil, applies per-cycle membership churn.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// CrashFraction kills this fraction of nodes right after
	// initialization (their value mass disappears); a pre-crash
	// snapshot row is emitted with Cycle = -1. Requires the complete
	// topology.
	CrashFraction float64 `json:"crash_fraction,omitempty"`
	// SizeEstimation, when non-nil, runs the §4 size estimator instead
	// of a plain aggregation run.
	SizeEstimation *SizeEstimationSpec `json:"size_estimation,omitempty"`
	// Adversary, when non-nil, makes a fraction of nodes Byzantine
	// (cycle mode only; eclipse needs the seq or rand selector).
	Adversary *AdversarySpec `json:"adversary,omitempty"`
	// Robust, when non-nil, enables robust-merge countermeasures.
	Robust *RobustSpec `json:"robust,omitempty"`
	// Shards selects the executor: 0 (default) the exact sequential
	// path, ≥ 2 the sharded tournament executor, AutoShards (-1) one
	// shard per GOMAXPROCS worker. The sharded executor supports the
	// complete topology with any of the built-in selectors (pm and
	// pmrand additionally need an even size and no churn); an explicit
	// count on an unsupported combination is an error, while AutoShards
	// falls back to sequential execution (RunResult.Sharded reports
	// which executor actually ran).
	Shards int `json:"shards,omitempty"`
	// Repeats is the number of independent repetitions (default 1).
	Repeats int `json:"repeats,omitempty"`
	// Seed seeds the scenario; repeat r derives its own stream from
	// Seed + 0x9e3779b97f4a7c15·(r+1).
	Seed uint64 `json:"seed,omitempty"`
	// Values supplies the initial vector (length Size); empty draws
	// iid standard normal values, the paper's uncorrelated start.
	Values []float64 `json:"values,omitempty"`
	// TargetRatio, when > 0, stops a run early once the field-0
	// variance falls to TargetRatio·σ₀² (cycle mode only).
	TargetRatio float64 `json:"target_ratio,omitempty"`
	// Quantiles adds the P10/P50/P90 percentiles of field 0 to every
	// emitted row (one extra sort per cycle).
	Quantiles bool `json:"quantiles,omitempty"`
}

// shardable reports whether the sharded executor supports the spec's
// combination of axes (after enum defaults are applied).
func (s Spec) shardable() bool {
	if s.Topology != TopologyComplete || s.Wait != WaitNone ||
		s.SizeEstimation != nil {
		return false
	}
	switch s.Selector {
	case SelectorSeq, SelectorRand:
		return true
	case SelectorPM, SelectorPMRand:
		// The matching halves need a fixed even population.
		return s.Size%2 == 0 && s.Churn == nil
	default:
		return false
	}
}

// normalized returns a copy of the spec with defaults applied, or an
// error describing the first invalid or unsupported combination.
func (s Spec) normalized() (Spec, error) {
	minSize := 2
	if s.SizeEstimation != nil {
		minSize = 4
	}
	if s.Size < minSize {
		return s, fmt.Errorf("scenario: %s needs size ≥ %d, got %d", s.describe(), minSize, s.Size)
	}
	if s.Cycles == 0 {
		s.Cycles = DefaultCycles
	}
	if s.Cycles < 1 {
		return s, fmt.Errorf("scenario: %s needs cycles ≥ 1, got %d", s.describe(), s.Cycles)
	}
	if !s.Selector.valid() || !s.Topology.valid() || !s.Wait.valid() || !s.Loss.valid() {
		return s, fmt.Errorf("scenario: %s: out-of-range enum value (selector=%d topology=%d wait=%d loss=%d)",
			s.describe(), s.Selector, s.Topology, s.Wait, s.Loss)
	}
	if s.Selector == SelectorDefault {
		s.Selector = SelectorSeq
	}
	if s.Topology == TopologyDefault {
		s.Topology = TopologyComplete
	}
	if s.ViewSize == 0 {
		s.ViewSize = DefaultViewSize
	}
	if s.Repeats == 0 {
		s.Repeats = 1
	}
	if s.Repeats < 1 {
		return s, fmt.Errorf("scenario: %s needs repeats ≥ 1, got %d", s.describe(), s.Repeats)
	}
	if len(s.Values) > 0 && len(s.Values) != s.Size {
		return s, fmt.Errorf("scenario: %s: values length %d does not match size %d", s.describe(), len(s.Values), s.Size)
	}
	if _, err := s.ops(); err != nil {
		return s, err
	}
	if s.LossProb < 0 || s.LossProb >= 1 {
		return s, fmt.Errorf("scenario: %s: loss_prob must be in [0, 1), got %g", s.describe(), s.LossProb)
	}
	if s.Loss == LossAuto && s.LossProb > 0 {
		if s.Wait != WaitNone {
			s.Loss = LossSymmetric
		} else {
			s.Loss = LossReply
		}
	}
	if s.CrashFraction < 0 || s.CrashFraction >= 1 {
		return s, fmt.Errorf("scenario: %s: crash_fraction must be in [0, 1), got %g", s.describe(), s.CrashFraction)
	}
	complete := s.Topology == TopologyComplete
	if s.CrashFraction > 0 {
		if !complete {
			return s, fmt.Errorf("scenario: %s: crash_fraction requires the complete topology", s.describe())
		}
		if survivors := s.Size - int(s.CrashFraction*float64(s.Size)); survivors < 2 {
			return s, fmt.Errorf("scenario: %s: crash_fraction %g leaves < 2 survivors", s.describe(), s.CrashFraction)
		}
	}
	if s.Churn != nil {
		if !complete {
			return s, fmt.Errorf("scenario: %s: churn requires the complete topology (dynamic overlay)", s.describe())
		}
		if s.Selector == SelectorPM || s.Selector == SelectorPMRand {
			return s, fmt.Errorf("scenario: %s: churn does not compose with the %s selector (perfect matchings need a fixed even population)", s.describe(), s.Selector)
		}
		if _, err := s.Churn.schedule(s.Size); err != nil {
			return s, err
		}
	}
	if s.Shards == AutoShards && !s.shardable() {
		// AutoShards asks for the fastest supported executor, not for
		// sharding per se; an unshardable combination runs the exact
		// sequential path (RunResult.Sharded reports the outcome).
		s.Shards = 0
	}
	switch s.Wait {
	case WaitNone:
	default:
		if s.Selector != SelectorSeq {
			return s, fmt.Errorf("scenario: %s: wait mode replaces pair selection; selector must be left default", s.describe())
		}
		if s.Churn != nil || s.CrashFraction > 0 || s.Shards != 0 || s.TargetRatio > 0 {
			return s, fmt.Errorf("scenario: %s: wait mode does not compose with churn, crash, shards or target_ratio", s.describe())
		}
	}
	if s.Shards != 0 && s.Shards != 1 {
		if s.Shards < -1 {
			return s, fmt.Errorf("scenario: %s: shards must be ≥ 0 or -1 (auto), got %d", s.describe(), s.Shards)
		}
		if !complete {
			return s, fmt.Errorf("scenario: %s: sharded execution requires the complete topology", s.describe())
		}
		switch s.Selector {
		case SelectorSeq, SelectorRand:
		case SelectorPM, SelectorPMRand:
			if s.Size%2 != 0 {
				return s, fmt.Errorf("scenario: %s: sharded %s pairing needs an even size, got %d", s.describe(), s.Selector, s.Size)
			}
			if s.Churn != nil {
				return s, fmt.Errorf("scenario: %s: sharded %s pairing does not compose with churn", s.describe(), s.Selector)
			}
		default:
			return s, fmt.Errorf("scenario: %s: sharded execution does not support selector %q", s.describe(), s.Selector)
		}
	}
	if s.TargetRatio < 0 || s.TargetRatio >= 1 {
		if s.TargetRatio != 0 {
			return s, fmt.Errorf("scenario: %s: target_ratio must be in (0, 1), got %g", s.describe(), s.TargetRatio)
		}
	}
	if a := s.Adversary; a != nil {
		if !a.Behavior.valid() {
			return s, fmt.Errorf("scenario: %s: out-of-range adversary behavior value %d", s.describe(), a.Behavior)
		}
		norm := *a
		if norm.Behavior == BehaviorDefault {
			norm.Behavior = BehaviorExtreme
		}
		if norm.Magnitude == 0 {
			norm.Magnitude = DefaultAdversaryMagnitude
		}
		if !(norm.Fraction > 0 && norm.Fraction < 1) {
			return s, fmt.Errorf("scenario: %s: adversary fraction must be in (0, 1), got %g", s.describe(), norm.Fraction)
		}
		// Sizing uses the post-crash population, the one the adversaries
		// are drawn from.
		n := s.Size
		if s.CrashFraction > 0 {
			n -= int(s.CrashFraction * float64(n))
		}
		count := norm.count(n)
		if count < 1 {
			return s, fmt.Errorf("scenario: %s: adversary fraction %g places no adversary in %d nodes", s.describe(), norm.Fraction, n)
		}
		if n-count < 2 {
			return s, fmt.Errorf("scenario: %s: adversary fraction %g leaves < 2 honest nodes", s.describe(), norm.Fraction)
		}
		if s.Wait != WaitNone {
			return s, fmt.Errorf("scenario: %s: the adversary axis requires cycle mode", s.describe())
		}
		if norm.Behavior == BehaviorEclipse && (s.Selector == SelectorPM || s.Selector == SelectorPMRand) {
			// Matching-based pair streams fix both endpoints up front, so
			// eclipse redirection has no initiator draw to capture.
			return s, fmt.Errorf("scenario: %s: eclipse adversaries need the seq or rand selector, got %s", s.describe(), s.Selector)
		}
		s.Adversary = &norm
	}
	if r := s.Robust; r != nil {
		norm := *r
		if norm.TrimK == 0 {
			norm.TrimK = DefaultTrimK
		}
		if !norm.Clamp && !norm.Trim {
			return s, fmt.Errorf("scenario: %s: robust spec enables no countermeasure (set clamp and/or trim)", s.describe())
		}
		if norm.Clamp && !(norm.ClampMin < norm.ClampMax) {
			return s, fmt.Errorf("scenario: %s: clamp needs clamp_min < clamp_max, got [%g, %g]", s.describe(), norm.ClampMin, norm.ClampMax)
		}
		if norm.Trim && norm.TrimK <= 0 {
			return s, fmt.Errorf("scenario: %s: trim_k must be > 0, got %g", s.describe(), norm.TrimK)
		}
		if s.Wait != WaitNone {
			return s, fmt.Errorf("scenario: %s: robust merge requires cycle mode", s.describe())
		}
		s.Robust = &norm
	}
	if se := s.SizeEstimation; se != nil {
		norm := *se
		if norm.EpochCycles == 0 {
			norm.EpochCycles = DefaultCycles
		}
		if norm.Instances == 0 {
			norm.Instances = 1
		}
		if norm.EpochCycles < 1 || norm.Instances < 1 {
			return s, fmt.Errorf("scenario: %s: size estimation needs epoch_cycles ≥ 1 and instances ≥ 1", s.describe())
		}
		if s.Cycles < norm.EpochCycles {
			return s, fmt.Errorf("scenario: %s: cycles (%d) shorter than one epoch (%d)", s.describe(), s.Cycles, norm.EpochCycles)
		}
		if s.Selector != SelectorSeq || !complete || s.Wait != WaitNone || s.Shards != 0 ||
			s.CrashFraction > 0 || s.Loss != LossAuto && s.Loss != LossNone || len(s.Ops) > 0 || s.TargetRatio > 0 ||
			s.Adversary != nil || s.Robust != nil {
			return s, fmt.Errorf("scenario: %s: size estimation composes only with size, cycles, churn, repeats and seed", s.describe())
		}
		s.SizeEstimation = &norm
	}
	return s, nil
}

// describe names the spec in error messages.
func (s Spec) describe() string {
	switch {
	case s.Name != "" && s.Label != "":
		return fmt.Sprintf("spec %q (%s)", s.Name, s.Label)
	case s.Name != "":
		return fmt.Sprintf("spec %q", s.Name)
	case s.Label != "":
		return fmt.Sprintf("spec (%s)", s.Label)
	default:
		return "spec"
	}
}

// ops parses the per-field merge operators.
func (s Spec) ops() ([]sim.Op, error) {
	if len(s.Ops) == 0 {
		return []sim.Op{sim.OpAvg}, nil
	}
	out := make([]sim.Op, len(s.Ops))
	for f, name := range s.Ops {
		switch name {
		case "avg":
			out[f] = sim.OpAvg
		case "min":
			out[f] = sim.OpMin
		case "max":
			out[f] = sim.OpMax
		default:
			return nil, fmt.Errorf("scenario: %s: unknown op %q (want avg, min or max)", s.describe(), name)
		}
	}
	return out, nil
}

// lossModel builds the sim loss model for a normalized spec (nil for
// lossless).
func (s Spec) lossModel() sim.LossModel {
	if s.LossProb <= 0 {
		return nil
	}
	switch s.Loss {
	case LossSymmetric:
		return sim.SymmetricLoss{P: s.LossProb}
	case LossReply:
		return sim.ReplyLoss{P: s.LossProb}
	default:
		return nil
	}
}

// sizeSimConfig translates a normalized size-estimation spec into the
// epoch package's configuration, seeded with the concrete per-repeat
// seed.
func (s Spec) sizeSimConfig(seed uint64) (epoch.SizeSimConfig, error) {
	cfg := epoch.SizeSimConfig{
		InitialSize: s.Size,
		EpochCycles: s.SizeEstimation.EpochCycles,
		TotalCycles: s.Cycles,
		Instances:   s.SizeEstimation.Instances,
		Seed:        seed,
	}
	if s.Churn != nil {
		sched, err := s.Churn.schedule(s.Size)
		if err != nil {
			return cfg, err
		}
		cfg.Churn = sched
	}
	return cfg, nil
}

// MarshalIndent renders the spec as indented JSON (for examples and
// golden files).
func (s Spec) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// seedStep is the golden-ratio stride of the per-repeat seed
// derivation (see repSeed).
const seedStep = 0x9e3779b97f4a7c15

// repSeed derives repeat r's seed from the spec seed — the historical
// derivation of the experiment harness's forEachRun, kept bit-exact so
// the rewritten figure drivers reproduce their pre-scenario output.
func repSeed(seed uint64, rep int) uint64 {
	return seed + seedStep*uint64(rep+1)
}

// RawSeed returns the Spec.Seed under which repeat 0 consumes exactly
// the random stream xrand.New(seed) — the seed vocabulary of the
// historical one-shot entry points (repro.Simulate, SimulateAsync,
// EstimateSizeUnderChurn). The deprecated wrappers use it to stay
// byte-identical across the Run redesign; new callers should treat
// Spec.Seed as opaque and simply pick one.
func RawSeed(seed uint64) uint64 {
	return seed - seedStep // repSeed(·, 0) adds one stride back
}

// nan is the missing-value marker used in Result rows.
var nan = math.NaN()
