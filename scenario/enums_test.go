package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestEnumStringParseRoundTrip: every declared enum value survives
// String → Parse, and unknown names are rejected with the option list.
func TestEnumStringParseRoundTrip(t *testing.T) {
	for v := SelectorDefault; v <= SelectorPMRand; v++ {
		got, err := ParseSelector(v.String())
		if err != nil || got != v {
			t.Errorf("selector %d: round trip gave %d, %v", v, got, err)
		}
	}
	for v := TopologyDefault; v <= TopologyScaleFree; v++ {
		got, err := ParseTopology(v.String())
		if err != nil || got != v {
			t.Errorf("topology %d: round trip gave %d, %v", v, got, err)
		}
	}
	for v := WaitNone; v <= WaitExponential; v++ {
		got, err := ParseWait(v.String())
		if err != nil || got != v {
			t.Errorf("wait %d: round trip gave %d, %v", v, got, err)
		}
	}
	for v := LossAuto; v <= LossReply; v++ {
		got, err := ParseLoss(v.String())
		if err != nil || got != v {
			t.Errorf("loss %d: round trip gave %d, %v", v, got, err)
		}
	}
	if _, err := ParseSelector("bogus"); err == nil {
		t.Error("unknown selector parsed")
	}
	if _, err := ParseTopology("torus"); err == nil {
		t.Error("unknown topology parsed")
	}
}

// TestEnumJSONRejectsUnknownAndNonString: decode-time validation fails
// loudly, and out-of-range Go values refuse to marshal.
func TestEnumJSONRejectsUnknownAndNonString(t *testing.T) {
	var s Spec
	for _, bad := range []string{
		`{"size":8,"selector":"bogus"}`,
		`{"size":8,"topology":"torus"}`,
		`{"size":8,"wait":"gaussian"}`,
		`{"size":8,"loss":"all"}`,
		`{"size":8,"selector":7}`,
	} {
		if err := json.Unmarshal([]byte(bad), &s); err == nil {
			t.Errorf("decoded %s", bad)
		}
	}
	if err := json.Unmarshal([]byte(`{"size":8,"selector":null}`), &s); err != nil || s.Selector != SelectorDefault {
		t.Errorf("null selector: %v, %d", err, s.Selector)
	}
	if _, err := json.Marshal(Spec{Size: 8, Selector: Selector(99)}); err == nil {
		t.Error("out-of-range selector marshaled")
	}
}

// TestTypedEnumsDecodeEveryShippedScenario proves the redesign's
// losslessness contract: every existing JSON scenario — the shipped
// examples and the aggsim golden spec — decodes through the typed
// enums, re-encodes, and decodes again to the identical grid. The
// enum fields observed across the corpus are asserted so the test
// fails if the corpus stops exercising them.
func TestTypedEnumsDecodeEveryShippedScenario(t *testing.T) {
	dirs := []string{
		filepath.Join("..", "examples", "scenarios"),
		filepath.Join("..", "cmd", "aggsim", "testdata"),
	}
	checked := 0
	sawSelectorAxis := false
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("scenario corpus dir %s: %v", dir, err)
		}
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".json" {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			grid, err := ParseFile(data)
			if err != nil {
				t.Fatalf("%s no longer decodes: %v", path, err)
			}
			// The typed spec must re-encode and decode to the same grid.
			reencoded, err := json.Marshal(grid)
			if err != nil {
				t.Fatalf("%s: re-encode: %v", path, err)
			}
			again, err := ParseFile(reencoded)
			if err != nil {
				t.Fatalf("%s: re-decode: %v", path, err)
			}
			if !reflect.DeepEqual(grid, again) {
				t.Fatalf("%s: enum round trip changed the grid:\n first %+v\nsecond %+v", path, grid, again)
			}
			// And every cell must still validate and expand.
			if _, err := grid.Expand(); err != nil {
				t.Fatalf("%s no longer expands: %v", path, err)
			}
			for _, a := range grid.Axes {
				if a.Param == "selector" {
					sawSelectorAxis = true
				}
			}
			checked++
		}
	}
	if checked < 4 {
		t.Fatalf("corpus shrank to %d scenario files", checked)
	}
	if !sawSelectorAxis {
		t.Fatal("corpus no longer sweeps an enum-typed axis")
	}
}

// TestRawSeedInvertsRepeatDerivation: RawSeed is the exact inverse of
// the repeat-0 stream derivation — the contract the deprecated
// wrappers' byte-compatibility rests on.
func TestRawSeedInvertsRepeatDerivation(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, ^uint64(0), 0x9e3779b97f4a7c15} {
		if got := repSeed(RawSeed(seed), 0); got != seed {
			t.Errorf("repSeed(RawSeed(%d), 0) = %d", seed, got)
		}
	}
}
