// Quickstart: run a live in-memory cluster of gossiping nodes and watch
// every node's approximation of the global average converge.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 32 nodes, node i holding local value i (true average 15.5).
	cluster, err := repro.NewCluster(repro.ClusterConfig{
		Size:        32,
		Schema:      repro.NewAverageSchema(),
		Value:       func(i int) float64 { return float64(i) },
		CycleLength: 10 * time.Millisecond, // Δt
		Seed:        1,
	})
	if err != nil {
		return err
	}
	cluster.Start()
	defer cluster.Stop()

	fmt.Println("cycle  variance-across-nodes   node0-estimate")
	for tick := 0; tick <= 10; tick++ {
		variance, err := cluster.Variance("avg")
		if err != nil {
			return err
		}
		est, err := cluster.Nodes()[0].Estimate("avg")
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %22.6g   %.6f\n", tick, variance, est)
		time.Sleep(10 * time.Millisecond) // one cycle length
	}

	final, converged, err := cluster.WaitConverged("avg", 1e-9, 5*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("\nconverged=%v final variance=%.3g (true average is 15.5)\n", converged, final)
	return nil
}
