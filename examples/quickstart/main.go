// Quickstart: open a live in-memory aggregation system and watch every
// node's approximation of the global average converge — the Open/Watch
// front door in its smallest form.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 32 nodes, node i holding local value i (true average 15.5). Open
	// assembles and starts the system in one call.
	sys, err := repro.Open(
		repro.WithSize(32),
		repro.WithValues(func(i int) float64 { return float64(i) }),
		repro.WithCycleLength(10*time.Millisecond),
		repro.WithSeed(1),
	)
	if err != nil {
		return err
	}
	defer sys.Close()

	// Watch streams one typed snapshot per cycle; cancelling the
	// context ends the stream within one cycle.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	estimates, err := sys.Watch(ctx, "avg")
	if err != nil {
		return err
	}
	fmt.Println("cycle  variance-across-nodes   node0-estimate")
	for est := range estimates {
		node0, err := sys.Nodes()[0].Estimate("avg")
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %22.6g   %.6f\n", est.Seq, est.Variance, node0)
		if est.Seq >= 10 {
			cancel() // done watching; the channel closes promptly
		}
	}

	final, err := sys.WaitConverged(context.Background(), "avg", 1e-9)
	if err != nil {
		return err
	}
	fmt.Printf("\nconverged: variance=%.3g mean=%.4f across %d nodes (true average is 15.5)\n",
		final.Variance, final.Mean, final.Nodes)
	return nil
}
