// Quickstart: open a live in-memory aggregation system and watch every
// node's approximation of the global average converge — the Open/Watch
// front door in its smallest form — then scrape the system's own
// Prometheus /metrics endpoint.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 32 nodes, node i holding local value i (true average 15.5). Open
	// assembles and starts the system in one call.
	// WithOps serves /metrics, /varz, /healthz and pprof for the
	// system's lifetime; :0 picks a free port (sys.OpsAddr() has it).
	sys, err := repro.Open(
		repro.WithSize(32),
		repro.WithValues(func(i int) float64 { return float64(i) }),
		repro.WithCycleLength(10*time.Millisecond),
		repro.WithSeed(1),
		repro.WithOps("127.0.0.1:0"),
	)
	if err != nil {
		return err
	}
	defer sys.Close()

	// Watch streams one typed snapshot per cycle; cancelling the
	// context ends the stream within one cycle.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	estimates, err := sys.Watch(ctx, "avg")
	if err != nil {
		return err
	}
	fmt.Println("cycle  variance-across-nodes   node0-estimate")
	for est := range estimates {
		node0, err := sys.Nodes()[0].Estimate("avg")
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %22.6g   %.6f\n", est.Seq, est.Variance, node0)
		if est.Seq >= 10 {
			cancel() // done watching; the channel closes promptly
		}
	}

	final, err := sys.WaitConverged(context.Background(), "avg", 1e-9)
	if err != nil {
		return err
	}
	fmt.Printf("\nconverged: variance=%.3g mean=%.4f across %d nodes (true average is 15.5)\n",
		final.Variance, final.Mean, final.Nodes)

	// The system exports its runtime counters in Prometheus text
	// format — scrape it like any monitoring stack would. (The same
	// numbers are available in-process via sys.Telemetry().)
	resp, err := http.Get("http://" + sys.OpsAddr() + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Println("\nselected /metrics series:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "repro_engine_nodes") ||
			strings.HasPrefix(line, "repro_convergence_rho_geo") ||
			strings.HasPrefix(line, "repro_watch_snapshots_total") {
			fmt.Println(" ", line)
		}
	}
	return nil
}
