// Adaptive tracking: the "all nodes know the value of some aggregate
// continuously, in an adaptive fashion" promise from the paper's
// introduction. Nodes' local values drift over time (a simulated daily
// load pattern); the protocol restarts every epoch, so every node's
// estimate follows the moving global average with one-epoch delay —
// without any node ever asking a coordinator. Each epoch is one
// declarative spec executed through repro.Run.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro"
	"repro/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		size        = 2000
		epochCycles = 20
		epochs      = 12
	)

	// Per-node load: a shared daily sinusoid plus a node-specific
	// offset. The global average moves with the sinusoid.
	baseLoad := func(epochIdx, node int) float64 {
		daily := 50 + 30*math.Sin(2*math.Pi*float64(epochIdx)/8)
		return daily + float64(node%10) - 4.5
	}

	ctx := context.Background()
	fmt.Println("epoch  true-average  estimate@node0  |error|")
	for e := 0; e < epochs; e++ {
		// Snapshot this epoch's local values (in a live deployment
		// nodes call SetValue and the next restart picks it up; here we
		// run each epoch through the simulation front door for
		// determinism).
		values := make([]float64, size)
		sum := 0.0
		for i := range values {
			values[i] = baseLoad(e, i)
			sum += values[i]
		}
		trueAvg := sum / size

		res, err := repro.Run(ctx, scenario.Spec{
			Size:   size,
			Cycles: epochCycles,
			Values: values,
			Seed:   uint64(1000 + e),
		})
		if err != nil {
			return err
		}
		est := res.Values[0] // every node holds ≈ the same estimate
		fmt.Printf("%5d  %12.4f  %14.4f  %.2e\n", e, trueAvg, est, math.Abs(est-trueAvg))
	}
	fmt.Println("\nEach epoch restarts from fresh local values, so the estimate tracks")
	fmt.Println("the drifting global average (paper §4: restart mechanism).")
	return nil
}
