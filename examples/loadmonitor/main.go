// Load monitor: the grid-monitoring workload the paper's introduction
// motivates ("the identity of the most powerful peer in a grid or the
// total amount of free space in a distributed storage"). Every node
// gossips a five-field summary — mean, variance, min, max and a size
// indicator — so each node continuously knows the cluster-wide load
// picture without any coordinator. The system is assembled with Open
// and observed with WaitConverged plus a point query.
//
//	go run ./examples/loadmonitor
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	schema := repro.NewSummarySchema()
	sizeIdx := 4 // "size" field position in the summary schema

	// Synthetic load profile: most nodes lightly loaded, a few hot.
	load := func(i int) float64 {
		if i%10 == 0 {
			return 90 + float64(i%7) // hot spots
		}
		return 10 + float64(i%25)
	}

	const clusterSize = 40
	sys, err := repro.Open(
		repro.WithSize(clusterSize),
		repro.WithSchema(schema),
		repro.WithValues(load),
		repro.WithCycleLength(5*time.Millisecond),
		repro.WithSeed(7),
		// Node 0 leads the size-estimation instance: its indicator
		// starts at 1, everyone else's at 0 (§4).
		repro.WithInitState(func(i int) func(uint64, float64) repro.State {
			return func(_ uint64, value float64) repro.State {
				st := schema.InitState(value)
				if i == 0 {
					st[sizeIdx] = 1
				}
				return st
			}
		}),
	)
	if err != nil {
		return err
	}
	defer sys.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := sys.WaitConverged(ctx, "avg", 1e-6); err != nil {
		return fmt.Errorf("cluster did not converge: %w", err)
	}
	// Give the min/max and size fields a few more cycles to settle too.
	time.Sleep(100 * time.Millisecond)

	// Ask an arbitrary node — every node has the global picture.
	probe := sys.Nodes()[13]
	summary, err := repro.DecodeSummary(schema, probe.State())
	if err != nil {
		return err
	}
	fmt.Println("cluster-wide load summary, as known by node 13:")
	fmt.Printf("  mean load     : %8.2f\n", summary.Mean)
	fmt.Printf("  load stddev   : %8.2f\n", math.Sqrt(summary.Variance))
	fmt.Printf("  min load      : %8.2f\n", summary.Min)
	fmt.Printf("  max load      : %8.2f  (the hottest peer)\n", summary.Max)
	fmt.Printf("  network size  : %8.1f  (true: %d)\n", summary.Size, clusterSize)
	fmt.Printf("  total load    : %8.1f  (mean × size)\n", summary.Sum)
	return nil
}
