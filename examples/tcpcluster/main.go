// TCP cluster: the same protocol over real sockets. Ten nodes listen on
// loopback ports, bootstrap their membership from a single seed peer via
// piggybacked gossip, and converge on the average of their values — the
// deployment shape a real P2P network would use.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro"
)

const (
	clusterSize = 10
	cycleLength = 20 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	schema := repro.NewAverageSchema()

	// Listen first so every node has a routable address.
	endpoints := make([]repro.Endpoint, 0, clusterSize)
	for i := 0; i < clusterSize; i++ {
		ep, err := repro.NewTCPEndpoint("127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("listen node %d: %w", i, err)
		}
		endpoints = append(endpoints, ep)
	}

	// Every node knows only node 0's address; the rest of the overlay is
	// discovered through piggybacked membership gossip.
	seed := endpoints[0].Addr()
	nodes := make([]*repro.Node, 0, clusterSize)
	for i := 0; i < clusterSize; i++ {
		seeds := []string{seed}
		if i == 0 {
			seeds = []string{endpoints[1].Addr()}
		}
		sampler, err := repro.NewGossipSampler(endpoints[i].Addr(), 6, seeds)
		if err != nil {
			return err
		}
		node, err := repro.NewNode(repro.NodeConfig{
			Schema:      schema,
			Endpoint:    endpoints[i],
			Sampler:     sampler,
			Value:       float64(10 * i), // true average: 45
			CycleLength: cycleLength,
			Wait:        repro.ExponentialWait,
			Seed:        uint64(i + 1),
		})
		if err != nil {
			return err
		}
		nodes = append(nodes, node)
	}

	for i, n := range nodes {
		fmt.Printf("node %d listening on %s (value %g)\n", i, n.Addr(), float64(10*i))
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	fmt.Println("\ngossiping over TCP loopback ...")
	deadline := time.Now().Add(30 * time.Second)
	for {
		worst := 0.0
		for _, n := range nodes {
			est, err := n.Estimate("avg")
			if err != nil {
				return err
			}
			if d := math.Abs(est - 45); d > worst {
				worst = d
			}
		}
		fmt.Printf("worst deviation from true average 45: %.4f\n", worst)
		if worst < 0.05 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("did not converge within 30s (worst deviation %.4f)", worst)
		}
		time.Sleep(10 * cycleLength)
	}

	var total repro.NodeStats
	for _, n := range nodes {
		s := n.Stats()
		total.Initiated += s.Initiated
		total.Replies += s.Replies
		total.Timeouts += s.Timeouts
	}
	fmt.Printf("\nconverged. exchanges initiated=%d replies=%d timeouts=%d\n",
		total.Initiated, total.Replies, total.Timeouts)
	return nil
}
