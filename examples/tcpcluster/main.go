// TCP cluster: the same protocol over real sockets. Ten single-node
// systems listen on loopback ports, bootstrap their membership from a
// single seed peer via piggybacked gossip, and converge on the average
// of their values — the deployment shape a real P2P network would use,
// with each process opened through repro.Open(WithTCP(...)).
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro"
)

const (
	clusterSize = 10
	cycleLength = 20 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Open the seed system first so every later node has a routable
	// address to bootstrap from.
	systems := make([]*repro.System, 0, clusterSize)
	defer func() {
		for _, s := range systems {
			s.Close()
		}
	}()
	open := func(i int, seeds ...string) error {
		sys, err := repro.Open(
			repro.WithTCP("127.0.0.1:0", seeds...),
			repro.WithValue(float64(10*i)), // true average: 45
			repro.WithCycleLength(cycleLength),
			repro.WithWaitPolicy(repro.ExponentialWait),
			repro.WithMembershipView(6),
			repro.WithSeed(uint64(i+1)),
		)
		if err != nil {
			return err
		}
		systems = append(systems, sys)
		return nil
	}
	if err := open(0); err != nil {
		return err
	}
	seed := systems[0].Nodes()[0].Addr()
	for i := 1; i < clusterSize; i++ {
		if err := open(i, seed); err != nil {
			return err
		}
	}
	for i, s := range systems {
		fmt.Printf("node %d listening on %s (value %g)\n", i, s.Nodes()[0].Addr(), float64(10*i))
	}

	fmt.Println("\ngossiping over TCP loopback ...")
	deadline := time.Now().Add(30 * time.Second)
	for {
		worst := 0.0
		for _, s := range systems {
			est, err := s.Nodes()[0].Estimate("avg")
			if err != nil {
				return err
			}
			if d := math.Abs(est - 45); d > worst {
				worst = d
			}
		}
		fmt.Printf("worst deviation from true average 45: %.4f\n", worst)
		if worst < 0.05 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("did not converge within 30s (worst deviation %.4f)", worst)
		}
		time.Sleep(10 * cycleLength)
	}

	var total repro.NodeStats
	for _, s := range systems {
		st := s.Stats()
		total.Initiated += st.Initiated
		total.Replies += st.Replies
		total.Timeouts += st.Timeouts
	}
	fmt.Printf("\nconverged. exchanges initiated=%d replies=%d timeouts=%d\n",
		total.Initiated, total.Replies, total.Timeouts)
	return nil
}
