// Size estimation under churn: the paper's §4 application. A network
// whose size oscillates (day/night) with constant node turnover runs the
// epoch-restarted counting protocol; every epoch each node learns a fresh
// estimate of how many peers are out there. The whole experiment is one
// declarative spec executed through repro.Run; the per-epoch reports
// arrive in Result.Epochs.
//
//	go run ./examples/sizeestimate
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	res, err := repro.Run(context.Background(), scenario.Spec{
		Name:   "size-estimation",
		Size:   10000,
		Cycles: 480,
		Churn: &scenario.ChurnSpec{
			Model:       "oscillating",
			Min:         9000,
			Max:         11000,
			Period:      240, // cycles per day/night swing
			Fluctuation: 10,  // nodes leaving and joining every cycle
		},
		SizeEstimation: &scenario.SizeEstimationSpec{
			EpochCycles: 30, // protocol restarts every 30 cycles
			Instances:   4,  // concurrent estimation instances per epoch
		},
		Seed: 2026,
	})
	if err != nil {
		return err
	}

	fmt.Println("epoch  cycle  actual-size  estimate (min..max across nodes)")
	for _, r := range res.Epochs {
		fmt.Printf("%5d  %5d  %11d  %8.0f (%.0f..%.0f)\n",
			r.Epoch, r.EndCycle, r.SizeAtStart, r.EstimateMean, r.EstimateMin, r.EstimateMax)
	}
	fmt.Println("\nNote the one-epoch lag: an epoch's estimate describes the network")
	fmt.Println("as it was when the epoch started, because joiners wait for the next")
	fmt.Println("restart (paper §4, Figure 4).")
	return nil
}
